package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"anna/internal/slo"
	"anna/internal/tsdb"
)

// Router-side observability (docs/ARCHITECTURE.md §4k): the embedded
// tsdb snapshots the routing counters, the SLO engine evaluates burn
// rates over them, and /debug/trace/{id} stitches the router's cluster
// trace together with the shard-side traces recorded under the same ID.

// initObs builds the tsdb and SLO engine from cfg, mirroring the
// annaserve wiring. A negative ScrapeEvery disables everything.
func (rt *Router) initObs(cfg Config) {
	if cfg.ScrapeEvery < 0 {
		return
	}
	interval := cfg.ScrapeEvery
	if interval == 0 {
		interval = 10 * time.Second
	}
	opt := cfg.SLOOptions
	if opt.Logger == nil {
		opt.Logger = rt.logger
	}
	slowLong := opt.SlowLong
	if slowLong <= 0 {
		slowLong = 6 * time.Hour
	}
	capacity := int(slowLong/interval) + 8
	if capacity < 256 {
		capacity = 256
	}
	if capacity > 4096 {
		capacity = 4096
	}

	searchHist := rt.duration["search"]
	series := []tsdb.Series{
		{Name: "requests", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(rt.resps.Load()) }},
		{Name: "errors_5xx", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(rt.resps5xx.Load()) }},
		{Name: "partials", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(rt.partials.Value()) }},
		{Name: "latency_p99_ms", Kind: tsdb.GaugeKind, Sample: func() float64 { return searchHist.Quantile(0.99) * 1000 }},
		{Name: "goroutines", Kind: tsdb.GaugeKind, Sample: func() float64 { return float64(runtime.NumGoroutine()) }},
	}
	var slos []slo.SLO
	if cfg.SLOLatencyP99 > 0 {
		// Windowed, bucket-derived counters — not the cumulative p99 —
		// so the alert clears once the slowness stops (see the annaserve
		// twin of this wiring for the full rationale).
		bound := searchHist.NearestBound(cfg.SLOLatencyP99.Seconds())
		series = append(series,
			tsdb.Series{Name: "latency_slow", Kind: tsdb.CounterKind,
				Sample: func() float64 { return float64(searchHist.Count() - searchHist.CountLE(bound)) }},
			tsdb.Series{Name: "latency_total", Kind: tsdb.CounterKind,
				Sample: func() float64 { return float64(searchHist.Count()) }},
		)
		slos = append(slos, slo.SLO{Name: "latency_p99", Objective: 0.99})
	}
	if cfg.SLOAvailability > 0 {
		slos = append(slos, slo.SLO{Name: "availability", Objective: cfg.SLOAvailability})
	}
	db := tsdb.New(capacity, series...)
	for i := range slos {
		switch slos[i].Name {
		case "latency_p99":
			slos[i].BadRatio = slo.BadShare(db, "latency_total", slo.Part{Series: "latency_slow", Weight: 1})
		case "availability":
			// Partial-coverage-aware: a degraded answer (some shards
			// missing) costs half an error against the budget.
			slos[i].BadRatio = slo.BadShare(db, "requests",
				slo.Part{Series: "errors_5xx", Weight: 1},
				slo.Part{Series: "partials", Weight: 0.5})
		}
	}
	eng := slo.New(opt, slos...)
	eng.Register(rt.reg)
	db.OnScrape(eng.EvaluateAt)
	db.Start(interval)
	rt.db, rt.eng = db, eng
}

// handleDebugQueries serves the router's recent traces, slowest first,
// each with a per-shard time breakdown computed from its hops. ?n=
// bounds the response.
func (rt *Router) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	traces := rt.rec.Snapshot()
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Total > traces[j].Total })
	if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(traces) {
		traces = traces[:n]
	}
	type entry struct {
		Trace  any              `json:"trace"`
		Shards map[string]int64 `json:"shard_ns,omitempty"` // total hop time per shard
	}
	out := make([]entry, len(traces))
	for i, t := range traces {
		e := entry{Trace: t}
		if len(t.Hops) > 0 {
			e.Shards = make(map[string]int64, len(t.Hops))
			for _, h := range t.Hops {
				e.Shards[strconv.Itoa(h.Shard)] += int64(h.Duration)
			}
		}
		out[i] = e
	}
	total, slow := rt.rec.Recorded()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"recorded_total": total,
		"slow_total":     slow,
		"count":          len(out),
		"traces":         out,
	})
}

// stitchTimeout bounds each shard-side trace fetch during stitching.
const stitchTimeout = 2 * time.Second

// handleDebugTrace serves one cluster trace by ID, stitched on demand:
// the router's own trace (hops included) plus each touched shard's
// /debug/trace/{id} view of the same request. The shard fetches go
// through the raw HTTP client, not Shard.Do — a debug read must not
// perturb serving stats, the retry budget, or the breaker.
func (rt *Router) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := r.PathValue("id")
	t := rt.rec.Get(id)
	if t == nil {
		rt.httpError(w, http.StatusNotFound, "no buffered trace with id %q (evicted or never traced)", id)
		return
	}
	touched := map[int]bool{}
	for _, h := range t.Hops {
		touched[h.Shard] = true
	}
	shardTraces := make(map[string]json.RawMessage, len(touched))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for idx := range touched {
		s := rt.shards[idx]
		wg.Add(1)
		go func(idx int, s *Shard) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), stitchTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.Base+"/debug/trace/"+id, nil)
			if err != nil {
				return
			}
			resp, err := s.opt.Client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(body) {
				// A shard without the trace (evicted, restarted) just
				// leaves its slot out of the stitch.
				return
			}
			mu.Lock()
			shardTraces[strconv.Itoa(idx)] = body
			mu.Unlock()
		}(idx, s)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"trace":        t,
		"shard_traces": shardTraces,
	})
}
