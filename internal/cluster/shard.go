package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"anna/internal/qos"
	"anna/internal/trace"
)

// ErrShardDown is returned when a shard's circuit breaker is open (or
// its half-open probe is already taken): the request was not sent.
var ErrShardDown = errors.New("cluster: shard circuit open")

// HeaderRequestID is the request-ID header propagated from router
// clients through every shard hop, matching annaserve's contract.
const HeaderRequestID = "X-Request-ID"

// reqIDKey carries the request ID through a scatter so every shard hop
// can stamp HeaderRequestID without threading an extra parameter
// through Shard.Do's many call sites.
type reqIDKey struct{}

// WithRequestID returns ctx carrying the request ID for outbound hops.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// ShardOptions configure every remote hop to one shard.
type ShardOptions struct {
	// Timeout is the per-attempt deadline for search/read requests
	// (default 2s). Each retry and hedge gets its own.
	Timeout time.Duration
	// AddTimeout is the per-attempt deadline for add requests (default
	// 10s — an add pays WAL fsync and ingest encode).
	AddTimeout time.Duration
	// Retries is the number of re-sends after a failed idempotent
	// request (0 = default 2, -1 = disabled). Non-idempotent requests
	// are never retried regardless.
	Retries int
	// Backoff shapes the delay between retries (zero value = qos
	// defaults: 50ms base, 2s cap, doubling, ±50% jitter).
	Backoff qos.Backoff
	// RetryBudgetRatio is the retry-budget deposit per request: with
	// 0.1 (the default), sustained traffic earns one retry per ten
	// requests, so retries can amplify load by at most 10% — a
	// struggling shard is never hammered with a retry storm.
	RetryBudgetRatio float64
	// RetryBudgetBurst caps the accumulated budget (default 10 tokens).
	RetryBudgetBurst float64
	// HedgeAfter enables hedged requests: when an idempotent request
	// has been in flight for the shard's observed p99 latency (clamped
	// to [HedgeAfter, HedgeMax]), a second identical request races it
	// and the first response wins. 0 disables hedging.
	HedgeAfter time.Duration
	// HedgeMax caps the hedge delay (default 10×HedgeAfter).
	HedgeMax time.Duration
	// BreakerFailures and BreakerCooldown configure the circuit
	// breaker (defaults 5 consecutive failures, 1s cooldown).
	BreakerFailures int
	BreakerCooldown time.Duration
	// Client overrides the HTTP client (tests). Per-attempt deadlines
	// still come from Timeout/AddTimeout via context.
	Client *http.Client
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.AddTimeout <= 0 {
		o.AddTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBudgetRatio <= 0 {
		o.RetryBudgetRatio = 0.1
	}
	if o.RetryBudgetBurst <= 0 {
		o.RetryBudgetBurst = 10
	}
	if o.HedgeAfter > 0 && o.HedgeMax <= 0 {
		o.HedgeMax = 10 * o.HedgeAfter
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// ShardStats are the lifetime counters of one shard client, all
// atomically updated (exported through the router's /metrics).
type ShardStats struct {
	Requests  atomic.Uint64 // attempts sent (incl. retries and hedges)
	Retries   atomic.Uint64
	Hedges    atomic.Uint64
	Failures  atomic.Uint64 // attempts that ended in transport error / 5xx
	FastFails atomic.Uint64 // requests refused locally by the open breaker
}

// retryBudget is a token bucket that bounds retry amplification:
// every request deposits ratio tokens, every retry or hedge spends one.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

func (rb *retryBudget) deposit() {
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.burst {
		rb.tokens = rb.burst
	}
	rb.mu.Unlock()
}

func (rb *retryBudget) spend() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// latRing records recent successful-attempt latencies for the hedge
// delay: a fixed ring of nanosecond samples, written lock-free.
type latRing struct {
	slots [128]atomic.Int64
	next  atomic.Uint64
	n     atomic.Uint64
}

func (lr *latRing) observe(d time.Duration) {
	i := lr.next.Add(1) - 1
	lr.slots[i%uint64(len(lr.slots))].Store(int64(d))
	if lr.n.Load() < uint64(len(lr.slots)) {
		lr.n.Add(1)
	}
}

// p99 returns the 99th-percentile recent latency, or 0 with no samples.
func (lr *latRing) p99() time.Duration {
	n := lr.n.Load()
	if n > uint64(len(lr.slots)) {
		n = uint64(len(lr.slots))
	}
	if n == 0 {
		return 0
	}
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = lr.slots[i].Load()
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return time.Duration(buf[(int(n)-1)*99/100])
}

// Shard is the hardened client for one annaserve replica. All methods
// are safe for concurrent use.
type Shard struct {
	Index int    // position in the router's shard list (= ID stripe)
	Base  string // base URL, e.g. "http://10.0.0.7:7080"

	opt     ShardOptions
	breaker *Breaker
	budget  *retryBudget
	lat     *latRing
	stats   ShardStats
}

// NewShard returns a client for the replica at base.
func NewShard(index int, base string, opt ShardOptions) *Shard {
	opt = opt.withDefaults()
	return &Shard{
		Index:   index,
		Base:    base,
		opt:     opt,
		breaker: NewBreaker(opt.BreakerFailures, opt.BreakerCooldown),
		budget:  &retryBudget{ratio: opt.RetryBudgetRatio, burst: opt.RetryBudgetBurst},
		lat:     &latRing{},
	}
}

// Breaker exposes the shard's circuit breaker (metrics, tests).
func (s *Shard) Breaker() *Breaker { return s.breaker }

// Stats exposes the shard's lifetime counters.
func (s *Shard) Stats() *ShardStats { return &s.stats }

// result is one attempt's outcome.
type result struct {
	status int
	body   []byte
	err    error
}

// bad reports whether the attempt counts as a shard failure: transport
// error or 5xx. 4xx is the caller's problem, not the shard's.
func (r result) bad() bool { return r.err != nil || r.status >= 500 }

// Do sends one request to the shard with the full hardening stack:
// breaker fast-fail, per-attempt timeout, hedging (idempotent only),
// budgeted retries with jittered backoff. It returns the final status
// and body; err is non-nil only when no response was obtained at all.
func (s *Shard) Do(ctx context.Context, method, path string, body []byte, idempotent bool) (int, []byte, error) {
	if !s.breaker.Allow() {
		s.stats.FastFails.Add(1)
		if tr := trace.FromContext(ctx); tr != nil {
			// Nothing was sent, but the refusal must still be attributed:
			// a stitched trace with a missing shard and no explanation is
			// worse than no trace at all.
			tr.AddHop(trace.Hop{
				Shard:   s.Index,
				Kind:    "fastfail",
				Breaker: s.breaker.State(),
				Err:     ErrShardDown.Error(),
				Start:   time.Since(tr.Start),
			})
		}
		return 0, nil, fmt.Errorf("%w: %s", ErrShardDown, s.Base)
	}
	s.budget.deposit()
	attempts := 1
	if idempotent {
		attempts += s.opt.Retries
	}
	var last result
	for try := 0; ; try++ {
		last = s.attempt(ctx, method, path, body, idempotent, try)
		if !last.bad() {
			s.breaker.Success()
			return last.status, last.body, nil
		}
		s.breaker.Failure()
		s.stats.Failures.Add(1)
		if try+1 >= attempts || !s.budget.spend() {
			break
		}
		s.stats.Retries.Add(1)
		select {
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-time.After(s.opt.Backoff.Delay(try)):
		}
	}
	if last.err != nil {
		return 0, nil, last.err
	}
	return last.status, last.body, nil
}

// attempt runs one logical try: a single request, or — when hedging is
// enabled and the primary is slow — a primary/hedge race where the
// first acceptable response wins and the loser is canceled. try numbers
// logical tries from 0 and shapes the recorded hop kind.
func (s *Shard) attempt(ctx context.Context, method, path string, body []byte, idempotent bool, try int) result {
	tr := trace.FromContext(ctx)
	kind := "primary"
	if try > 0 {
		kind = "retry"
	}
	if !idempotent || s.opt.HedgeAfter <= 0 {
		start := time.Now()
		r := s.once(ctx, method, path, body, idempotent)
		s.recordHop(tr, r, kind, try+1, start, !r.bad())
		return r
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	// raced carries the attempt's kind and start alongside its result so
	// the coordinator — the only goroutine that records hops — can
	// attribute whatever it reads. A canceled loser's result is sent into
	// the buffer but never read, so it never records a hop: a trace shows
	// exactly the attempts whose outcome mattered.
	type raced struct {
		res   result
		kind  string
		start time.Time
	}
	ch := make(chan raced, 2)
	launch := func(k string) {
		st := time.Now()
		ch <- raced{res: s.once(actx, method, path, body, idempotent), kind: k, start: st}
	}
	go launch(kind)
	outstanding := 1
	hedged := false
	timer := time.NewTimer(s.hedgeDelay())
	defer timer.Stop()
	var last result
	for {
		select {
		case rr := <-ch:
			outstanding--
			win := !rr.res.bad()
			s.recordHop(tr, rr.res, rr.kind, try+1, rr.start, win)
			if win {
				return rr.res // cancel (deferred) reels the loser in
			}
			last = rr.res
			if outstanding == 0 {
				return last
			}
		case <-timer.C:
			// Primary still in flight past the hedge delay: race a
			// second copy, if the budget allows and we have not already.
			if !hedged && s.budget.spend() {
				hedged = true
				s.stats.Hedges.Add(1)
				outstanding++
				go launch("hedge")
			}
		case <-ctx.Done():
			return result{err: ctx.Err()}
		}
	}
}

// recordHop attributes one finished attempt to the request's trace.
// No-op (and allocation-free) when the request is untraced.
func (s *Shard) recordHop(tr *trace.Trace, r result, kind string, attempt int, start time.Time, winner bool) {
	if tr == nil {
		return
	}
	h := trace.Hop{
		Shard:    s.Index,
		Attempt:  attempt,
		Kind:     kind,
		Winner:   winner,
		Breaker:  s.breaker.State(),
		Status:   r.status,
		Bytes:    int64(len(r.body)),
		Start:    start.Sub(tr.Start),
		Duration: time.Since(start),
	}
	if r.err != nil {
		h.Err = r.err.Error()
	}
	tr.AddHop(h)
}

// hedgeDelay is the observed p99 clamped to [HedgeAfter, HedgeMax];
// with no samples yet it is HedgeMax (hedge late, not eagerly).
func (s *Shard) hedgeDelay() time.Duration {
	d := s.lat.p99()
	if d < s.opt.HedgeAfter {
		d = s.opt.HedgeAfter
	}
	if d > s.opt.HedgeMax {
		d = s.opt.HedgeMax
	}
	if d <= 0 {
		d = s.opt.HedgeMax
	}
	return d
}

// once sends exactly one HTTP request with its own per-attempt deadline.
func (s *Shard) once(ctx context.Context, method, path string, body []byte, idempotent bool) result {
	timeout := s.opt.Timeout
	if !idempotent {
		timeout = s.opt.AddTimeout
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, s.Base+path, rd)
	if err != nil {
		return result{err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := RequestIDFrom(ctx); id != "" {
		req.Header.Set(HeaderRequestID, id)
	}
	if tr := trace.FromContext(ctx); tr != nil {
		// Cross-process trace context: the shard's own trace adopts this
		// ID and names its parent span, so the router can stitch the
		// shard-side view into its cluster trace afterwards.
		req.Header.Set(trace.HeaderWire, trace.FormatWire(tr.ID, "shard"+strconv.Itoa(s.Index)))
	}
	s.stats.Requests.Add(1)
	start := time.Now()
	resp, err := s.opt.Client.Do(req)
	if err != nil {
		return result{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		// A truncated body (connection cut mid-response) is a failed
		// attempt even with a 200 status line — callers must never see
		// half a response.
		return result{err: fmt.Errorf("cluster: reading %s%s response: %w", s.Base, path, err)}
	}
	if resp.StatusCode < 500 {
		s.lat.observe(time.Since(start))
	}
	return result{status: resp.StatusCode, body: b}
}
