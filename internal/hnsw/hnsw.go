// Package hnsw implements Hierarchical Navigable Small World graphs
// [Malkov & Yashunin, TPAMI 2018] — the leading graph-based ANNS family
// the paper positions AGAINST compression-based search (Section II-A,
// Section VI): graph methods win on million-scale workloads but "are
// impractical for billion-scale searches as they require a large graph
// to be resident in memory" along with the uncompressed vectors.
//
// This implementation exists to quantify that trade-off inside this
// repository (harness experiment `graph`): recall/QPS against IVF-PQ at
// million scale, and the memory-footprint comparison that rules HNSW out
// at billion scale.
package hnsw

import (
	"fmt"
	"math"
	"math/rand"

	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Config controls graph construction.
type Config struct {
	// M is the maximum out-degree per layer (layer 0 allows 2M).
	// Default 16.
	M int
	// EfConstruction is the beam width during insertion. Default 200.
	EfConstruction int
	// Metric selects the similarity (scores follow the repository's
	// larger-is-more-similar convention).
	Metric pq.Metric
	Seed   int64
}

func (c *Config) defaults() {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
}

// Graph is a built HNSW index. It references (does not copy) the data
// matrix — graph methods need the full-precision vectors at search time,
// which is exactly the memory cost the paper highlights.
type Graph struct {
	cfg  Config
	data *vecmath.Matrix
	// links[l][n] is node n's neighbor list at layer l (nil above the
	// node's top layer).
	links [][][]int32
	// level[n] is node n's top layer.
	level []int
	entry int
	maxL  int
	rng   *rand.Rand
	// DistanceComputations counts similarity evaluations (for cost
	// accounting in the harness).
	DistanceComputations int64
}

// Build constructs the graph over the rows of data.
func Build(data *vecmath.Matrix, cfg Config) *Graph {
	cfg.defaults()
	if data.Rows == 0 {
		panic("hnsw: no data")
	}
	g := &Graph{
		cfg:   cfg,
		data:  data,
		level: make([]int, data.Rows),
		entry: -1,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < data.Rows; i++ {
		g.insert(i)
	}
	return g
}

// score is the similarity between node n and vector q (larger = closer).
func (g *Graph) score(q []float32, n int) float32 {
	g.DistanceComputations++
	if g.cfg.Metric == pq.InnerProduct {
		return vecmath.Dot(q, g.data.Row(n))
	}
	return -vecmath.L2Sq(q, g.data.Row(n))
}

// randomLevel samples a layer with the standard exponential distribution
// (mL = 1/ln(M)).
func (g *Graph) randomLevel() int {
	ml := 1.0 / math.Log(float64(g.cfg.M))
	return int(-math.Log(g.rng.Float64()) * ml)
}

// insert adds node n to the graph.
func (g *Graph) insert(n int) {
	l := g.randomLevel()
	g.level[n] = l
	for len(g.links) <= l {
		g.links = append(g.links, make([][]int32, g.data.Rows))
	}

	if g.entry < 0 {
		g.entry, g.maxL = n, l
		return
	}

	q := g.data.Row(n)
	ep := g.entry
	// Greedy descent through layers above l.
	for lc := g.maxL; lc > l; lc-- {
		ep = g.greedy(q, ep, lc)
	}
	// Beam insertion on layers min(l, maxL)..0.
	top := l
	if top > g.maxL {
		top = g.maxL
	}
	for lc := top; lc >= 0; lc-- {
		cands := g.searchLayer(q, ep, g.cfg.EfConstruction, lc)
		m := g.cfg.M
		if lc == 0 {
			m = 2 * g.cfg.M
		}
		neighbors := g.selectNeighbors(q, cands, m)
		g.links[lc][n] = neighbors
		for _, nb := range neighbors {
			g.links[lc][nb] = append(g.links[lc][nb], int32(n))
			if len(g.links[lc][nb]) > m {
				g.shrink(int(nb), lc, m)
			}
		}
		if len(cands) > 0 {
			ep = int(cands[0].ID)
		}
	}
	if l > g.maxL {
		g.maxL, g.entry = l, n
	}
}

// greedy walks to the locally closest node at layer lc.
func (g *Graph) greedy(q []float32, ep, lc int) int {
	best, bestScore := ep, g.score(q, ep)
	for {
		improved := false
		for _, nb := range g.links[lc][best] {
			if s := g.score(q, int(nb)); s > bestScore {
				best, bestScore = int(nb), s
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

// searchLayer is the beam search: it returns up to ef candidates at
// layer lc sorted by descending similarity.
func (g *Graph) searchLayer(q []float32, ep, ef, lc int) []topk.Result {
	visited := map[int32]struct{}{int32(ep): {}}
	res := topk.NewSelector(ef)
	epScore := g.score(q, ep)
	res.Push(int64(ep), epScore)

	// Candidate max-frontier as a simple slice-backed heap on score.
	frontier := []topk.Result{{ID: int64(ep), Score: epScore}}
	pop := func() topk.Result {
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i].Score > frontier[best].Score {
				best = i
			}
		}
		r := frontier[best]
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		return r
	}

	for len(frontier) > 0 {
		c := pop()
		if worst, full := res.Threshold(); full && c.Score < worst {
			break
		}
		for _, nb := range g.links[lc][c.ID] {
			if _, seen := visited[nb]; seen {
				continue
			}
			visited[nb] = struct{}{}
			s := g.score(q, int(nb))
			worst, full := res.Threshold()
			if !full || s > worst {
				res.Push(int64(nb), s)
				frontier = append(frontier, topk.Result{ID: int64(nb), Score: s})
			}
		}
	}
	return res.Results()
}

// selectNeighbors applies the HNSW diversity heuristic (Algorithm 4 of
// the paper): walk candidates in descending similarity to q and keep one
// only if it is closer to q than to every neighbor already kept. On
// clustered data this is what preserves the long-range edges that keep
// the graph navigable; plain closest-m selection disconnects clusters.
// Pruned candidates backfill remaining slots ("keepPruned").
func (g *Graph) selectNeighbors(q []float32, cands []topk.Result, m int) []int32 {
	kept := make([]int32, 0, m)
	var pruned []int32
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		diverse := true
		for _, r := range kept {
			// c is dominated if it is closer to a kept neighbor than to q.
			if g.score(g.data.Row(int(c.ID)), int(r)) > c.Score {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, int32(c.ID))
		} else {
			pruned = append(pruned, int32(c.ID))
		}
	}
	for _, p := range pruned {
		if len(kept) >= m {
			break
		}
		kept = append(kept, p)
	}
	return kept
}

// shrink re-selects node n's neighbor list at layer lc down to m using
// the same diversity heuristic.
func (g *Graph) shrink(n, lc, m int) {
	q := g.data.Row(n)
	sel := topk.NewSelector(len(g.links[lc][n]))
	for _, nb := range g.links[lc][n] {
		sel.Push(int64(nb), g.score(q, int(nb)))
	}
	g.links[lc][n] = g.selectNeighbors(q, sel.Results(), m)
}

// Search returns the top-k neighbors of q using beam width ef (>= k).
func (g *Graph) Search(q []float32, ef, k int) []topk.Result {
	if k <= 0 || ef < k {
		panic(fmt.Sprintf("hnsw: need ef >= k > 0, got ef=%d k=%d", ef, k))
	}
	if len(q) != g.data.Cols {
		panic("hnsw: query dimension mismatch")
	}
	ep := g.entry
	for lc := g.maxL; lc > 0; lc-- {
		ep = g.greedy(q, ep, lc)
	}
	res := g.searchLayer(q, ep, ef, 0)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// Len returns the number of indexed vectors.
func (g *Graph) Len() int { return g.data.Rows }

// MemoryBytes returns the resident footprint the paper's argument turns
// on: full-precision vectors (2 bytes/dim as stored by the evaluated
// systems) plus the adjacency lists (4 bytes per link).
func (g *Graph) MemoryBytes() int64 {
	vectors := 2 * int64(g.data.Rows) * int64(g.data.Cols)
	var links int64
	for _, layer := range g.links {
		for _, l := range layer {
			links += int64(len(l)) * 4
		}
	}
	return vectors + links
}

// AvgDegree returns the mean layer-0 out-degree (graph quality proxy).
func (g *Graph) AvgDegree() float64 {
	if len(g.links) == 0 {
		return 0
	}
	var sum int
	for _, l := range g.links[0] {
		sum += len(l)
	}
	return float64(sum) / float64(g.data.Rows)
}

// EstimateMemoryBytes projects the footprint of an HNSW index over n
// d-dimensional vectors with out-degree m, without building it — the
// billion-scale feasibility check (vectors at 2 B/dim + ~(2m + m/ln(m))
// links of 4 B per node).
func EstimateMemoryBytes(n, d, m int) int64 {
	perNodeLinks := float64(2*m) + float64(m)/math.Log(float64(m))
	return 2*int64(n)*int64(d) + int64(float64(n)*perNodeLinks*4)
}
