package hnsw

import (
	"testing"

	"anna/internal/dataset"
	"anna/internal/exact"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

func buildGraph(t testing.TB, metric pq.Metric, n int) (*Graph, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(n, 16, 1)
	spec.D = 32
	spec.Metric = metric
	ds := dataset.Generate(spec)
	g := Build(ds.Base, Config{M: 12, EfConstruction: 80, Metric: metric, Seed: 7})
	return g, ds
}

func TestHighRecallAtMillionScaleRegime(t *testing.T) {
	// The paper's point: graph methods are very effective at this scale.
	g, ds := buildGraph(t, pq.L2, 4000)
	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)
	got := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		got[qi] = g.Search(ds.Queries.Row(qi), 64, 10)
	}
	if r := recall.Mean(10, 10, gt, got); r < 0.9 {
		t.Errorf("HNSW recall 10@10 = %.3f, expected >= 0.9", r)
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	g, ds := buildGraph(t, pq.L2, 2000)
	for _, i := range []int{0, 500, 1999} {
		res := g.Search(ds.Base.Row(i), 32, 1)
		if res[0].ID != int64(i) {
			t.Errorf("self-query %d returned %d (score %v)", i, res[0].ID, res[0].Score)
		}
	}
}

func TestInnerProductMetric(t *testing.T) {
	g, ds := buildGraph(t, pq.InnerProduct, 2000)
	gt := exact.New(pq.InnerProduct, ds.Base).GroundTruth(ds.Queries, 5)
	got := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		got[qi] = g.Search(ds.Queries.Row(qi), 48, 5)
	}
	if r := recall.Mean(5, 5, gt, got); r < 0.7 {
		t.Errorf("MIPS recall 5@5 = %.3f", r)
	}
}

func TestRecallImprovesWithEf(t *testing.T) {
	g, ds := buildGraph(t, pq.L2, 3000)
	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)
	prev := -1.0
	for _, ef := range []int{10, 40, 160} {
		got := make([][]topk.Result, ds.Queries.Rows)
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			got[qi] = g.Search(ds.Queries.Row(qi), ef, 10)
		}
		r := recall.Mean(10, 10, gt, got)
		if r < prev-0.02 {
			t.Errorf("recall fell with larger ef=%d: %.3f < %.3f", ef, r, prev)
		}
		prev = r
	}
	if prev < 0.85 {
		t.Errorf("recall at ef=160 only %.3f", prev)
	}
}

func TestGraphStructureInvariants(t *testing.T) {
	g, _ := buildGraph(t, pq.L2, 1500)
	// Degree caps: M per upper layer, 2M at layer 0.
	for lc, layer := range g.links {
		cap := g.cfg.M
		if lc == 0 {
			cap = 2 * g.cfg.M
		}
		for n, l := range layer {
			if len(l) > cap {
				t.Fatalf("node %d layer %d degree %d > cap %d", n, lc, len(l), cap)
			}
			// No self-loops or out-of-range links.
			for _, nb := range l {
				if int(nb) == n {
					t.Fatalf("self-loop at node %d layer %d", n, lc)
				}
				if nb < 0 || int(nb) >= g.Len() {
					t.Fatalf("dangling link %d", nb)
				}
				// Links only to nodes that exist at this layer.
				if g.level[nb] < lc {
					t.Fatalf("node %d links to %d above its top layer", n, nb)
				}
			}
		}
	}
	if g.AvgDegree() <= 1 {
		t.Errorf("layer-0 average degree %.1f too sparse", g.AvgDegree())
	}
	if g.level[g.entry] != g.maxL {
		t.Errorf("entry point not at max level")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	spec := dataset.SIFTLike(800, 4, 3)
	spec.D = 16
	ds := dataset.Generate(spec)
	a := Build(ds.Base, Config{M: 8, EfConstruction: 40, Seed: 5})
	b := Build(ds.Base, Config{M: 8, EfConstruction: 40, Seed: 5})
	q := ds.Queries.Row(0)
	ra := a.Search(q, 20, 5)
	rb := b.Search(q, 20, 5)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("same seed diverged at rank %d", i)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	g, ds := buildGraph(t, pq.L2, 1000)
	mem := g.MemoryBytes()
	vectorBytes := int64(2 * ds.N() * ds.D())
	if mem <= vectorBytes {
		t.Errorf("memory %d should exceed raw vectors %d (links)", mem, vectorBytes)
	}
	// The paper's billion-scale argument: an HNSW over SIFT1B needs
	// vastly more memory than the 4:1-compressed PQ index.
	est := EstimateMemoryBytes(1_000_000_000, 128, 16)
	pqBytes := int64(1_000_000_000) * 64 // M=64, k*=256 codes
	if est < 3*pqBytes {
		t.Errorf("billion-scale HNSW %d bytes not >> PQ %d", est, pqBytes)
	}
	// And it exceeds the evaluated machine's 128 GB.
	if est < 128<<30 {
		t.Errorf("billion-scale HNSW estimate %d fits in 128 GB — argument lost", est)
	}
}

func TestTinyGraphs(t *testing.T) {
	spec := dataset.SIFTLike(64, 1, 9)
	spec.D = 8
	ds := dataset.Generate(spec)

	// A single-point graph returns its point.
	one := vecmath.NewMatrix(1, 8)
	one.SetRow(0, ds.Base.Row(0))
	g1 := Build(one, Config{M: 4, EfConstruction: 8})
	if res := g1.Search(one.Row(0), 8, 1); res[0].ID != 0 {
		t.Errorf("single-point graph returned %d", res[0].ID)
	}

	// With ef covering the whole 64-point graph, self-queries are exact
	// wherever the beam reaches; distance 0 must win outright when seen.
	g := Build(ds.Base, Config{M: 8, EfConstruction: 64})
	res := g.Search(ds.Base.Row(0), 64, 1)
	if res[0].ID != 0 {
		// 64 nearly-isolated Gaussian singletons are the worst case for
		// graph navigability; require at least that the result is close.
		if res[0].Score < -5 {
			t.Errorf("64-point self-query returned %d at %v", res[0].ID, res[0].Score)
		}
	}
}

func TestPanics(t *testing.T) {
	g, ds := buildGraph(t, pq.L2, 500)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ef<k", func() { g.Search(ds.Queries.Row(0), 4, 8) })
	mustPanic("k=0", func() { g.Search(ds.Queries.Row(0), 4, 0) })
	mustPanic("dim", func() { g.Search(make([]float32, 3), 8, 4) })
}

func BenchmarkSearch(b *testing.B) {
	g, ds := buildGraph(b, pq.L2, 5000)
	q := ds.Queries.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Search(q, 64, 10)
	}
}
