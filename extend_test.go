package anna

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAddVectorsPublicAPI(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	before := idx.Len()

	extra := clusteredVectors(100, 32, 24, 99)
	first, err := idx.Add(extra)
	if err != nil {
		t.Fatal(err)
	}
	if first != int64(before) || idx.Len() != before+100 {
		t.Fatalf("first=%d len=%d", first, idx.Len())
	}
	// An added vector is retrievable.
	res := idx.Search(extra[3], idx.NClusters(), 5)
	found := false
	for _, r := range res {
		if r.ID == first+3 {
			found = true
		}
	}
	if !found {
		t.Errorf("added vector not retrieved: %+v", res)
	}
	// Old vectors still retrievable.
	res = idx.Search(base[0], idx.NClusters(), 5)
	if len(res) == 0 {
		t.Fatal("no results after Add")
	}

	// Error paths.
	if _, err := idx.Add(nil); err == nil {
		t.Error("empty Add accepted")
	}
	if _, err := idx.Add([][]float32{{1, 2}}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestOPQRotationPublicAPI(t *testing.T) {
	base := clusteredVectors(2000, 32, 16, 21)
	queries := clusteredVectors(8, 32, 16, 22)
	plain, err := BuildIndex(base, L2, BuildOptions{
		NClusters: 16, M: 8, Ks: 16, TrainIters: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := BuildIndex(base, L2, BuildOptions{
		NClusters: 16, M: 8, Ks: 16, TrainIters: 5, Seed: 4, OPQRotation: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Recall comparable with and without rotation (rotation is an
	// isometry; queries are rotated transparently).
	recallOf := func(idx *Index) float64 {
		var total float64
		for _, q := range queries {
			ex, _ := ExactSearch(base, L2, q, 10)
			truth := make([]int64, len(ex))
			for i, r := range ex {
				truth[i] = r.ID
			}
			total += Recall(10, 100, truth, idx.Search(q, 16, 100))
		}
		return total / float64(len(queries))
	}
	rp, rr := recallOf(plain), recallOf(rotated)
	if rr < rp-0.25 {
		t.Errorf("rotation destroyed recall: %.2f vs %.2f", rr, rp)
	}

	// The simulated accelerator handles rotated indexes transparently.
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(rotated, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Simulate(queries, SimParams{W: 8, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := rotated.SearchBatch(queries, SearchOptions{
		W: 8, K: 10, Mode: QueryAtATime, HardwareFaithful: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rep.Results {
		for i := range rep.Results[qi] {
			if rep.Results[qi][i].Score != sw.Results[qi][i].Score {
				t.Fatalf("rotated accel/software mismatch q%d rank %d", qi, i)
			}
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	idx, _, queries := buildTestIndex(t, InnerProduct, 16)
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.anna")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("stat: %v size %d", err, fi.Size())
	}
	loaded, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a := idx.Search(queries[0], 4, 5)
	b := loaded.Search(queries[0], 4, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("file round trip differs at %d", i)
		}
	}
	if _, err := LoadIndexFile(filepath.Join(dir, "missing.anna")); err == nil {
		t.Error("missing file accepted")
	}
}

// A cluster larger than the encoded vector buffer exercises the EVB
// chunking / re-streaming path of both execution modes.
func TestAcceleratorOversizedCluster(t *testing.T) {
	// One dominant cluster: nearly all vectors in one blob.
	base := clusteredVectors(6000, 32, 1, 31)
	idx, err := BuildIndex(base, L2, BuildOptions{
		NClusters: 4, M: 8, Ks: 16, TrainIters: 4, Seed: 5, HardwareFaithful: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := clusteredVectors(24, 32, 1, 32)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	cfg.EVBBytes = 512 // force chunking: lists are ~ thousands of bytes
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Simulate(queries, SimParams{W: 4, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := idx.SearchBatch(queries, SearchOptions{
		W: 4, K: 10, Mode: QueryAtATime, HardwareFaithful: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rep.Results {
		for i := range rep.Results[qi] {
			if rep.Results[qi][i].Score != sw.Results[qi][i].Score {
				t.Fatalf("oversized-cluster mismatch q%d rank %d", qi, i)
			}
		}
	}
	// Multiple passes over an oversized list re-stream it: code traffic
	// must exceed the one-shot sum of visited lists.
	var visited int64
	st := idx.Stats()
	_ = st
	codes := rep.TrafficByStream["codes"]
	for c := 0; c < idx.NClusters(); c++ {
		visited += int64(idx.inner.Lists[c].Len() * idx.inner.PQ.CodeBytes())
	}
	if codes <= visited/2 {
		t.Errorf("expected re-streaming traffic, codes=%d visited-once=%d", codes, visited)
	}
}

func TestSearchRerankPublicAPI(t *testing.T) {
	base := clusteredVectors(3000, 32, 24, 41)
	idx, err := BuildIndex(base, L2, BuildOptions{
		NClusters: 24, M: 8, Ks: 16, TrainIters: 6, Seed: 3,
		RetainForRerank: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := base[100]
	refined, err := idx.SearchRerank(q, idx.NClusters(), 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined) != 5 {
		t.Fatalf("%d results", len(refined))
	}
	// A self-query re-ranked with near-exact scores puts the planted
	// vector first (SQ8 error is far below data spacing here).
	if refined[0].ID != 100 {
		t.Errorf("refined top-1 = %d, want 100", refined[0].ID)
	}

	// Error paths.
	plain, err := BuildIndex(base[:500], L2, BuildOptions{
		NClusters: 8, M: 8, Ks: 16, TrainIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.SearchRerank(q, 4, 5, 4); err == nil {
		t.Error("rerank without storage accepted")
	}
	if _, err := idx.SearchRerank([]float32{1}, 4, 5, 4); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestDeleteCompactPublicAPI(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	total := idx.Len()
	if n := idx.Delete(10, 11, 10); n != 2 {
		t.Fatalf("Delete returned %d", n)
	}
	if idx.Live() != total-2 {
		t.Errorf("Live = %d", idx.Live())
	}
	res := idx.Search(base[10], idx.NClusters(), 20)
	for _, r := range res {
		if r.ID == 10 {
			t.Fatal("deleted vector surfaced")
		}
	}
	// The simulated accelerator also filters tombstones.
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Simulate([][]float32{base[10]}, SimParams{W: idx.NClusters(), K: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results[0] {
		if r.ID == 10 {
			t.Fatal("accelerator surfaced a tombstoned ID")
		}
	}
	if removed := idx.Compact(); removed != 2 {
		t.Fatalf("Compact removed %d", removed)
	}
	if idx.Len() != total-2 || idx.Live() != total-2 {
		t.Errorf("post-compact Len=%d Live=%d", idx.Len(), idx.Live())
	}
	// Adds after compact get fresh IDs.
	first, err := idx.Add(clusteredVectors(3, 32, 24, 61))
	if err != nil {
		t.Fatal(err)
	}
	if first != int64(total) {
		t.Errorf("Add after compact assigned %d, want %d", first, total)
	}
}

func TestQueryLatenciesAndPercentile(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.SimulateBaseline(queries, SimParams{W: 4, K: 5, TimingOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.QueryLatencies) != len(queries) {
		t.Fatalf("%d latencies for %d queries", len(rep.QueryLatencies), len(queries))
	}
	p50 := LatencyPercentile(rep.QueryLatencies, 50)
	p99 := LatencyPercentile(rep.QueryLatencies, 99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("p50=%v p99=%v", p50, p99)
	}
	// Batched mode reports no per-query latencies (all finish together).
	b, err := acc.Simulate(queries, SimParams{W: 4, K: 5, TimingOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.QueryLatencies != nil {
		t.Error("batched mode reported per-query latencies")
	}

	// Percentile helper edge cases.
	if LatencyPercentile(nil, 50) != 0 {
		t.Error("empty sample percentile")
	}
	s := []float64{3, 1, 2}
	if LatencyPercentile(s, 0) != 1 || LatencyPercentile(s, 100) != 3 {
		t.Errorf("percentile bounds: %v %v", LatencyPercentile(s, 0), LatencyPercentile(s, 100))
	}
	defer func() {
		if recover() == nil {
			t.Error("bad percentile did not panic")
		}
	}()
	LatencyPercentile(s, 101)
}

func TestBatchReportQPSPositive(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	rep, err := idx.SearchBatch(queries, SearchOptions{W: 4, K: 10, Mode: ClusterMajor})
	if err != nil {
		t.Fatal(err)
	}
	if rep.QPS <= 0 {
		t.Errorf("QPS = %v", rep.QPS)
	}
}
