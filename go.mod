module anna

go 1.22
