package anna

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"anna/internal/adaptive"
	"anna/internal/engine"
	"anna/internal/exact"
	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Metric selects the similarity function.
type Metric int

const (
	// InnerProduct scores s(q,x) = q·x (maximum inner product search).
	InnerProduct Metric = iota
	// L2 ranks by Euclidean distance; reported scores are -||q-x||² so
	// that larger is always more similar.
	L2
)

func (m Metric) String() string {
	if m == InnerProduct {
		return "inner-product"
	}
	return "l2"
}

func (m Metric) internal() pq.Metric {
	if m == InnerProduct {
		return pq.InnerProduct
	}
	return pq.L2
}

// Result is one scored neighbor. Score follows the larger-is-more-similar
// convention for both metrics.
type Result struct {
	ID    int64
	Score float32
}

// BuildOptions configure index construction.
type BuildOptions struct {
	// NClusters is the number of coarse clusters |C| (the paper uses 250
	// for million-scale and 10000 for billion-scale datasets).
	NClusters int
	// M is the number of PQ sub-spaces; it must divide the vector
	// dimensionality.
	M int
	// Ks is the codebook size k*; the ANNA hardware supports 16 and 256.
	Ks int
	// TrainIters bounds k-means iterations (default 20).
	TrainIters int
	// MaxTrain caps the training sample (0 = use everything).
	MaxTrain int
	Seed     int64
	// Workers bounds the parallelism of the whole build pipeline
	// (k-means passes, per-sub-space codebook training, batch encoding)
	// and becomes the index's initial ingest parallelism for Add; 0
	// means GOMAXPROCS. The built index is bit-identical for any value.
	Workers int
	// HardwareFaithful rounds centroids and codebooks through IEEE
	// binary16, matching what the accelerator stores in SRAM. Enable it
	// when simulated and software searches must agree bit-for-bit.
	HardwareFaithful bool
	// OPQRotation preconditions the space with a random orthonormal
	// rotation before quantization (the OPQ variant the paper notes ANNA
	// supports unchanged). Queries are rotated transparently at search.
	OPQRotation bool
	// AnisotropicEta enables ScaNN-style score-aware encoding when > 1:
	// quantization error parallel to the datapoint is penalised by this
	// factor, which improves maximum-inner-product recall at equal
	// compression. Typical values are 2–6. Zero or one keeps the plain
	// (Faiss-style) reconstruction objective.
	AnisotropicEta float32
	// RetainForRerank keeps an 8-bit scalar-quantized copy of every
	// vector (Dim bytes each) so SearchRerank can refine PQ candidate
	// order with near-exact re-scoring ("re-rank with source coding").
	RetainForRerank bool
}

// Index is a two-level product-quantization ANNS index.
type Index struct {
	inner *ivf.Index

	// eng is the persistent batch engine, created on first SearchBatch
	// so its per-worker searcher/selector/LUT pools survive across
	// requests (a per-call engine would re-allocate them every batch).
	engOnce sync.Once
	eng     *engine.Engine
}

// engine returns the index's persistent batch engine.
func (x *Index) engine() *engine.Engine {
	x.engOnce.Do(func() { x.eng = engine.New(x.inner) })
	return x.eng
}

// EnginePoolStats reports the live saturation of the batch engine's
// worker pool: work items admitted but not yet started, and items
// executing right now. Both read zero when no batch is running. The
// serving layer exports them as the anna_engine_queue_depth and
// anna_engine_inflight_queries gauges.
func (x *Index) EnginePoolStats() (queueDepth, inFlight int64) {
	e := x.engine()
	return e.QueueDepth(), e.InFlight()
}

// BuildIndex trains an index over the given vectors (all of equal,
// non-zero length).
func BuildIndex(vectors [][]float32, metric Metric, opt BuildOptions) (*Index, error) {
	m, err := toMatrix(vectors)
	if err != nil {
		return nil, err
	}
	if opt.NClusters <= 0 || opt.NClusters > len(vectors) {
		return nil, fmt.Errorf("anna: NClusters must be in 1..%d, got %d", len(vectors), opt.NClusters)
	}
	if opt.M <= 0 || m.Cols%opt.M != 0 {
		return nil, fmt.Errorf("anna: M=%d must divide dimensionality %d", opt.M, m.Cols)
	}
	if opt.Ks < 2 || opt.Ks > 256 {
		return nil, fmt.Errorf("anna: Ks=%d out of range 2..256", opt.Ks)
	}
	if len(vectors) < opt.Ks {
		return nil, fmt.Errorf("anna: %d vectors cannot train Ks=%d codebooks", len(vectors), opt.Ks)
	}
	idx := ivf.Build(m, metric.internal(), ivf.Config{
		NClusters:      opt.NClusters,
		M:              opt.M,
		Ks:             opt.Ks,
		CoarseIters:    opt.TrainIters,
		PQIters:        opt.TrainIters,
		MaxTrain:       opt.MaxTrain,
		Seed:           opt.Seed,
		Workers:        opt.Workers,
		F16:            opt.HardwareFaithful,
		Rotate:         opt.OPQRotation,
		AnisotropicEta: opt.AnisotropicEta,
		Rerank:         opt.RetainForRerank,
	})
	idx.IngestWorkers = opt.Workers
	return &Index{inner: idx}, nil
}

// SetIngestWorkers bounds the parallelism of Add's batched
// assign+encode pipeline (0 = GOMAXPROCS); the ingested index contents
// are byte-identical for any value. Loaded indexes default to 0. Call it
// between, not during, Adds.
func (x *Index) SetIngestWorkers(n int) { x.inner.IngestWorkers = n }

// Add encodes and appends new vectors to an existing index using its
// trained model (centroids, codebooks, rotation), returning the ID
// assigned to the first added vector; subsequent vectors get consecutive
// IDs. The trained model is NOT retrained — like Faiss's add(), quality
// degrades if the data distribution drifts far from the training set.
func (x *Index) Add(vectors [][]float32) (firstID int64, err error) {
	m, err := toMatrix(vectors)
	if err != nil {
		return 0, err
	}
	if m.Cols != x.inner.D {
		return 0, fmt.Errorf("anna: vector dim %d, index dim %d", m.Cols, x.inner.D)
	}
	return x.inner.Add(m), nil
}

// Delete tombstones vectors by ID: they stop appearing in results
// immediately, while their codes remain until Compact. Unknown or
// already-deleted IDs are ignored; the count of newly deleted IDs is
// returned.
func (x *Index) Delete(ids ...int64) int { return x.inner.Delete(ids...) }

// Compact rewrites the inverted lists without tombstoned entries,
// reclaiming their space. IDs are never renumbered, so references held
// by callers stay valid. It returns the number of entries removed.
func (x *Index) Compact() int { return x.inner.Compact() }

// Live returns the number of searchable (non-deleted) vectors.
func (x *Index) Live() int { return x.inner.Live() }

// toMatrix validates and copies a slice-of-rows into a dense matrix.
func toMatrix(vectors [][]float32) (*vecmath.Matrix, error) {
	if len(vectors) == 0 {
		return nil, errors.New("anna: no vectors")
	}
	d := len(vectors[0])
	if d == 0 {
		return nil, errors.New("anna: zero-dimensional vectors")
	}
	m := vecmath.NewMatrix(len(vectors), d)
	for i, v := range vectors {
		if len(v) != d {
			return nil, fmt.Errorf("anna: vector %d has %d dims, want %d", i, len(v), d)
		}
		m.SetRow(i, v)
	}
	return m, nil
}

// Metric returns the index's similarity metric.
func (x *Index) Metric() Metric {
	if x.inner.Metric == pq.InnerProduct {
		return InnerProduct
	}
	return L2
}

// Len returns the number of indexed vectors.
func (x *Index) Len() int { return x.inner.NTotal }

// Dim returns the vector dimensionality.
func (x *Index) Dim() int { return x.inner.D }

// NClusters returns |C|.
func (x *Index) NClusters() int { return x.inner.NClusters() }

// AppendQueryCode appends the PQ code of query (in index space, i.e.
// after the build-time rotation) to dst and returns the extended slice.
// The code is the index's own M-byte quantization of the query — a
// compact, content-derived fingerprint the serving layer uses as the
// result-cache hash key. The quantizer is immutable after build, so
// this is safe to call concurrently with searches and adds. It panics
// when len(query) != Dim(), matching Search's convention.
func (x *Index) AppendQueryCode(dst []byte, query []float32) []byte {
	return x.inner.PQ.Encode(dst, x.inner.PrepQuery(query))
}

// Stats describes the built index.
type Stats struct {
	Vectors, Clusters      int
	CodeBytesPerVector     int
	TotalCodeBytes         int64
	CompressionRatio       float64
	MinListLen, MaxListLen int
}

// Stats returns index shape statistics.
func (x *Index) Stats() Stats {
	st := x.inner.ComputeStats()
	return Stats{
		Vectors:            st.NTotal,
		Clusters:           st.NClusters,
		CodeBytesPerVector: st.CodeBytes,
		TotalCodeBytes:     st.TotalCodeBytes,
		CompressionRatio:   st.CompressionRatio,
		MinListLen:         st.MinList,
		MaxListLen:         st.MaxList,
	}
}

// Search returns the k most similar indexed vectors to query, inspecting
// the w nearest clusters (the recall/throughput knob). It panics on
// invalid parameters, matching slice-indexing conventions for programmer
// errors.
func (x *Index) Search(query []float32, w, k int) []Result {
	return toResults(x.inner.Search(query, ivf.SearchParams{W: w, K: k}))
}

// SearchRerank runs the PQ search for k*factor candidates and re-scores
// them against 8-bit reconstructions of the original vectors, returning
// the top k in refined order. The index must have been built with
// RetainForRerank. On the real system this refinement runs on the host
// over the accelerator's returned candidates.
func (x *Index) SearchRerank(query []float32, w, k, factor int) ([]Result, error) {
	if !x.inner.CanRerank() {
		return nil, errors.New("anna: index built without RetainForRerank")
	}
	if len(query) != x.inner.D {
		return nil, fmt.Errorf("anna: query dim %d, index dim %d", len(query), x.inner.D)
	}
	return toResults(x.inner.SearchRerank(query, ivf.SearchParams{W: w, K: k}, factor)), nil
}

// SearchMode selects the batch execution discipline (Section II-D /
// Figure 5 of the paper).
type SearchMode int

const (
	// QueryAtATime processes each query independently.
	QueryAtATime SearchMode = iota
	// ClusterMajor batches queries by visited cluster, reusing each
	// fetched inverted list across queries (the discipline ANNA's
	// memory traffic optimization implements in hardware).
	ClusterMajor
)

// AdaptiveOptions are the per-query effort policies of the adaptive
// search layer (see docs/ARCHITECTURE.md §4j). The zero value disables
// both policies, leaving SearchBatch bit-identical to the fixed path.
type AdaptiveOptions struct {
	// StopPatience > 0 stops each query's cluster scan once its running
	// kth score has gone this many consecutive clusters without
	// improving; 0 scans all W clusters.
	StopPatience int
	// MinClusters is the per-query floor below which early termination
	// is never taken (values < 1 behave as 1).
	MinClusters int
	// EscalateFactor > 1 enables precision escalation: the PQ scan
	// keeps K*EscalateFactor candidates and the margin band among them
	// is re-scored in float32 against the SQ8 reconstructions. Requires
	// an index built with RetainForRerank (silently ignored otherwise).
	EscalateFactor int
	// Margin sets the escalation band width as a fraction of the wide
	// candidate list's score spread; 0 re-scores only the top K.
	Margin float32
}

// Enabled reports whether either adaptive policy is active.
func (a AdaptiveOptions) Enabled() bool { return a.StopPatience > 0 || a.EscalateFactor > 1 }

func (a AdaptiveOptions) internal() adaptive.Params {
	return adaptive.Params{
		StopPatience:   a.StopPatience,
		MinClusters:    a.MinClusters,
		EscalateFactor: a.EscalateFactor,
		Margin:         a.Margin,
	}
}

// SearchOptions configure SearchBatch.
type SearchOptions struct {
	W, K    int
	Mode    SearchMode
	Workers int
	// HardwareFaithful rounds LUT entries and scores through binary16,
	// matching the accelerator datapath exactly.
	HardwareFaithful bool
	// Adaptive enables per-query effort policies. When enabled the
	// engine always runs query-at-a-time (early termination is a
	// sequential per-query decision), overriding Mode.
	Adaptive AdaptiveOptions
}

// BatchReport is the outcome of a software batch search.
type BatchReport struct {
	Results [][]Result
	// QPS is the measured wall-clock throughput of this process.
	QPS float64
	// Elapsed is the wall-clock duration of the search phase.
	Elapsed time.Duration
	// ScannedVectors counts similarity computations performed.
	ScannedVectors int64
	// ListBytesTouched counts inverted-list bytes read (once per visiting
	// query in QueryAtATime; once per visited list in ClusterMajor).
	ListBytesTouched int64
	// SelectTime / ScanTime / MergeTime split the batch into the three
	// search stages — cluster filtering, LUT build + list scan, top-k
	// merge — summed across engine workers (their total can exceed
	// Elapsed on multi-worker runs). The serving layer records them into
	// the anna_stage_duration_seconds histograms.
	SelectTime, ScanTime, MergeTime time.Duration
	// ClustersScanned counts inverted lists actually scanned —
	// len(queries)*W on the fixed path, fewer under adaptive early
	// termination.
	ClustersScanned int64
	// Escalations counts candidates re-scored through the SQ8
	// escalation band; RerankTime is the worker time that took. Both
	// are zero unless AdaptiveOptions enabled escalation.
	Escalations int64
	RerankTime  time.Duration
}

// SearchBatch runs a batch of queries on the software engine and reports
// measured performance.
func (x *Index) SearchBatch(queries [][]float32, opt SearchOptions) (*BatchReport, error) {
	return x.SearchBatchContext(context.Background(), queries, opt)
}

// SearchBatchContext is SearchBatch with cancellation: engine workers
// re-check ctx between work items, so a cancelled or deadline-exceeded
// request stops within one item's latency per worker and returns ctx's
// error.
func (x *Index) SearchBatchContext(ctx context.Context, queries [][]float32, opt SearchOptions) (*BatchReport, error) {
	qm, err := toMatrix(queries)
	if err != nil {
		return nil, err
	}
	if qm.Cols != x.inner.D {
		return nil, fmt.Errorf("anna: query dim %d, index dim %d", qm.Cols, x.inner.D)
	}
	if opt.W <= 0 || opt.K <= 0 {
		return nil, fmt.Errorf("anna: W and K must be positive (got %d, %d)", opt.W, opt.K)
	}
	mode := engine.QueryAtATime
	if opt.Mode == ClusterMajor {
		mode = engine.ClusterMajor
	}
	rep, err := x.engine().RunContext(ctx, qm, engine.Options{
		Mode: mode, W: opt.W, K: opt.K,
		Workers: opt.Workers, HWF16: opt.HardwareFaithful,
		Adaptive: opt.Adaptive.internal(),
	})
	if err != nil {
		return nil, err
	}
	out := &BatchReport{
		QPS:              rep.QPS,
		Elapsed:          rep.Elapsed,
		ScannedVectors:   rep.ScannedVectors,
		ListBytesTouched: rep.ListBytesTouched,
		SelectTime:       rep.SelectTime,
		ScanTime:         rep.ScanTime,
		MergeTime:        rep.MergeTime,
		ClustersScanned:  rep.ClustersScanned,
		Escalations:      rep.Escalations,
		RerankTime:       rep.RerankTime,
		Results:          make([][]Result, len(rep.Results)),
	}
	for i, rs := range rep.Results {
		out.Results[i] = toResults(rs)
	}
	return out, nil
}

// NextID returns the ID the next Add will assign to its first vector.
func (x *Index) NextID() int64 { return x.inner.NextID() }

// Save writes the index to w in the checksummed binary ANNAIVF3 format.
func (x *Index) Save(w io.Writer) error { return x.inner.Save(w) }

// SaveFile writes the index to a file atomically: a temp file in the
// same directory is written, fsynced, and renamed over path, so a crash
// mid-save never leaves a truncated index behind.
func (x *Index) SaveFile(path string) error { return x.inner.SaveFile(path) }

// SaveIndexFile writes x to path atomically (see Index.SaveFile).
func SaveIndexFile(x *Index, path string) error { return x.SaveFile(path) }

// LoadIndex reads an index written by Save.
func LoadIndex(r io.Reader) (*Index, error) {
	idx, err := ivf.Load(r)
	if err != nil {
		return nil, err
	}
	return &Index{inner: idx}, nil
}

// LoadIndexFile reads an index from a file.
func LoadIndexFile(path string) (*Index, error) {
	idx, err := ivf.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Index{inner: idx}, nil
}

// ExactSearch performs exhaustive exact search over raw vectors — the
// ground-truth generator and the "brute force" baseline of the paper's
// Figure 8 footnotes.
func ExactSearch(vectors [][]float32, metric Metric, query []float32, k int) ([]Result, error) {
	m, err := toMatrix(vectors)
	if err != nil {
		return nil, err
	}
	if len(query) != m.Cols {
		return nil, fmt.Errorf("anna: query dim %d, data dim %d", len(query), m.Cols)
	}
	return toResults(exact.New(metric.internal(), m).Search(query, k)), nil
}

// Recall computes recall X@Y: of the x true neighbors, the fraction
// present among the first y returned candidates.
func Recall(x, y int, truth []int64, got []Result) float64 {
	rs := make([]topk.Result, len(got))
	for i, r := range got {
		rs[i] = topk.Result{ID: r.ID, Score: r.Score}
	}
	return recall.XAtY(x, y, truth, rs)
}

func toResults(rs []topk.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Score: r.Score}
	}
	return out
}
