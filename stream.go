package anna

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"anna/internal/dataset"
	"anna/internal/vecmath"
)

// StreamBuildOptions extend BuildOptions for bounded-memory construction.
type StreamBuildOptions struct {
	BuildOptions
	// SampleSize is how many leading vectors are buffered to train the
	// model before the remainder streams through encode-and-append
	// (default 100000, or the whole stream if shorter). Training sees
	// only this prefix; shuffle the file beforehand if its order is
	// strongly non-stationary.
	SampleSize int
	// ChunkSize bounds the vectors resident during the streaming phase
	// (default 8192).
	ChunkSize int
	// Progress, when non-nil, is invoked with the total number of
	// vectors ingested so far: once with 0 when model training starts,
	// once when training finishes (the sample is indexed), and after
	// every flushed chunk — the hook long ingestions report liveness
	// through (a log line, an ingest gauge). Except for ProgressEvery
	// heartbeats it runs on the building goroutine; keep it cheap.
	Progress func(ingested int)
	// ProgressEvery, when positive and Progress is set, additionally
	// fires Progress(0) at this period from a helper goroutine while the
	// model trains, so large parallel builds show liveness before the
	// first vectors are indexed. The heartbeat goroutine is stopped (and
	// waited for) before the post-training Progress call, so Progress is
	// never invoked concurrently with itself.
	ProgressEvery time.Duration
	// Logger, when non-nil, receives structured build milestones:
	// training start/end and stream completion. Progress remains the
	// hook for high-frequency liveness; Logger is for the few events an
	// operator greps for afterwards.
	Logger *slog.Logger
}

// BuildIndexFromFvecs trains and populates an index from an fvecs stream
// with bounded memory: only SampleSize training vectors plus one
// ChunkSize batch are resident at any time, while the index itself holds
// compressed codes — the workflow that makes billion-scale ingestion
// feasible (the full SIFT1B raw data is 256 GB; its 4:1 PQ index is
// 64 GB). Vector IDs follow stream order.
func BuildIndexFromFvecs(r io.Reader, metric Metric, opt StreamBuildOptions) (*Index, error) {
	if opt.SampleSize <= 0 {
		opt.SampleSize = 100000
	}
	if opt.ChunkSize <= 0 {
		opt.ChunkSize = 8192
	}
	sc := dataset.NewFvecsScanner(r)

	// Phase 1: buffer the training prefix.
	var sample [][]float32
	for len(sample) < opt.SampleSize && sc.Next() {
		row := make([]float32, sc.Dim())
		copy(row, sc.Row())
		sample = append(sample, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("anna: empty fvecs stream")
	}
	if opt.Progress != nil {
		opt.Progress(0) // training starts; nothing ingested yet
	}
	trainStart := time.Now()
	if opt.Logger != nil {
		opt.Logger.Info("stream build: training model", "sample_vectors", len(sample), "dim", sc.Dim())
	}
	stopHeartbeat := func() {}
	if opt.Progress != nil && opt.ProgressEvery > 0 {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(opt.ProgressEvery)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					opt.Progress(0)
				}
			}
		}()
		stopHeartbeat = func() { close(done); wg.Wait() }
	}
	idx, err := BuildIndex(sample, metric, opt.BuildOptions)
	stopHeartbeat()
	if err != nil {
		return nil, err
	}
	sample = nil // release the training buffer
	if opt.Progress != nil {
		opt.Progress(idx.Len())
	}
	if opt.Logger != nil {
		opt.Logger.Info("stream build: model trained", "vectors", idx.Len(),
			"clusters", idx.NClusters(), "duration", time.Since(trainStart))
	}

	// Phase 2: stream the remainder through encode-and-append in chunks.
	chunk := vecmath.NewMatrix(opt.ChunkSize, idx.Dim())
	filled := 0
	flush := func() {
		if filled == 0 {
			return
		}
		view := &vecmath.Matrix{Rows: filled, Cols: idx.Dim(),
			Data: chunk.Data[:filled*idx.Dim()]}
		idx.inner.Add(view)
		filled = 0
		if opt.Progress != nil {
			opt.Progress(idx.Len())
		}
	}
	for sc.Next() {
		if sc.Dim() != idx.Dim() {
			return nil, fmt.Errorf("anna: stream dimension changed to %d", sc.Dim())
		}
		copy(chunk.Row(filled), sc.Row())
		filled++
		if filled == opt.ChunkSize {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if opt.Logger != nil {
		opt.Logger.Info("stream build: ingest complete", "vectors", idx.Len())
	}
	return idx, nil
}

// BuildIndexFromFvecsFile is BuildIndexFromFvecs over a file path. A
// Close failure is reported (wrapped with the path) even when the build
// itself succeeded: on networked or error-deferring filesystems it can
// be the first sign the bytes read were not what the file holds.
func BuildIndexFromFvecsFile(path string, metric Metric, opt StreamBuildOptions) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	idx, err := BuildIndexFromFvecs(f, metric, opt)
	if cerr := f.Close(); cerr != nil && err == nil {
		return nil, fmt.Errorf("anna: closing %s: %w", path, cerr)
	}
	return idx, err
}

// TuneW finds the smallest W whose measured recall X@Y on the provided
// evaluation queries meets the target, using exact search over the given
// corpus sample for ground truth. It returns the chosen W and its
// recall; if even W = NClusters misses the target (e.g. a k*=16 recall
// ceiling), it returns that maximum W with ok=false. This is the
// recall/throughput knob-turning the paper performs manually for every
// Figure 8 curve.
func (x *Index) TuneW(corpus, queries [][]float32, rx, ry int, target float64) (w int, achieved float64, ok bool, err error) {
	if target <= 0 || target > 1 {
		return 0, 0, false, fmt.Errorf("anna: target recall %v out of (0,1]", target)
	}
	if rx <= 0 || ry < rx {
		return 0, 0, false, fmt.Errorf("anna: need ry >= rx > 0, got %d, %d", rx, ry)
	}
	truth := make([][]int64, len(queries))
	for i, q := range queries {
		ex, err := ExactSearch(corpus, x.Metric(), q, rx)
		if err != nil {
			return 0, 0, false, err
		}
		ids := make([]int64, len(ex))
		for j, r := range ex {
			ids[j] = r.ID
		}
		truth[i] = ids
	}
	measure := func(w int) float64 {
		var sum float64
		for i, q := range queries {
			sum += Recall(rx, ry, truth[i], x.Search(q, w, ry))
		}
		return sum / float64(len(queries))
	}

	// Doubling search for an upper bound, then binary search for the
	// smallest satisfying W (recall is monotone in W up to noise).
	maxW := x.NClusters()
	hi := 1
	for hi < maxW && measure(hi) < target {
		hi *= 2
	}
	if hi > maxW {
		hi = maxW
	}
	rHi := measure(hi)
	if rHi < target {
		return hi, rHi, false, nil
	}
	lo := hi / 2
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if measure(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, measure(hi), true, nil
}
