package anna

import (
	"fmt"

	"sort"

	iacc "anna/internal/anna"
	"anna/internal/energy"
	"anna/internal/sim"
	"anna/internal/vecmath"
)

// AcceleratorConfig is the hardware configuration of one simulated ANNA
// instance. Zero values are invalid; start from DefaultAcceleratorConfig.
type AcceleratorConfig struct {
	// NCU is the CPM compute-unit count (paper: 96).
	NCU int
	// NU is the per-SCM reduction width (paper: 64).
	NU int
	// NSCM is the number of Similarity Computation Modules (paper: 16).
	NSCM int
	// TopK is the top-k unit capacity (paper: 1000).
	TopK int
	// FreqGHz is the clock (paper: 1.0).
	FreqGHz float64
	// EVBBytes is one encoded-vector-buffer copy (paper: 1 MiB).
	EVBBytes int64
	// MemBandwidthGBs is the memory system bandwidth (paper: 64 GB/s per
	// instance).
	MemBandwidthGBs float64
	// Trace records a per-module execution timeline.
	Trace bool
}

// DefaultAcceleratorConfig returns the paper's evaluated design point.
func DefaultAcceleratorConfig() AcceleratorConfig {
	return AcceleratorConfig{
		NCU: 96, NU: 64, NSCM: 16, TopK: 1000,
		FreqGHz: 1.0, EVBBytes: 1 << 20, MemBandwidthGBs: 64,
	}
}

func (c AcceleratorConfig) internal() iacc.Config {
	ic := iacc.DefaultConfig()
	ic.NCU = c.NCU
	ic.NU = c.NU
	ic.NSCM = c.NSCM
	ic.K = c.TopK
	ic.FreqGHz = c.FreqGHz
	ic.EVBBytes = c.EVBBytes
	ic.Trace = c.Trace
	if c.FreqGHz > 0 {
		ic.DRAM.BandwidthBytesPerCycle = c.MemBandwidthGBs / c.FreqGHz
	}
	return ic
}

// Accelerator is a simulated ANNA instance bound to an index.
type Accelerator struct {
	inner *iacc.Accelerator
	cfg   AcceleratorConfig
}

// NewAccelerator binds a configured accelerator to an index. The
// hardware supports k* of 16 or 256 (Section III-A).
func NewAccelerator(idx *Index, cfg AcceleratorConfig) (acc *Accelerator, err error) {
	defer func() {
		if r := recover(); r != nil {
			acc, err = nil, fmt.Errorf("anna: %v", r)
		}
	}()
	return &Accelerator{inner: iacc.New(cfg.internal(), idx.inner), cfg: cfg}, nil
}

// SimParams control one simulated search command.
type SimParams struct {
	// W is the clusters-inspected knob; K the per-query result count.
	W, K int
	// SCMsPerQuery selects intra-query parallelism in batched mode
	// (0 = the paper's heuristic).
	SCMsPerQuery int
	// TimingOnly skips the functional datapath (no Results) for large
	// sweeps.
	TimingOnly bool
}

// TimelineSpan is one scheduled occupancy of a hardware unit.
type TimelineSpan struct {
	Unit       string
	Work       string
	Start, End int64
}

// SimReport is the outcome of a simulated search.
type SimReport struct {
	// Results holds each query's neighbors (nil when TimingOnly).
	Results [][]Result
	// Cycles is the simulated makespan; Seconds the wall-clock
	// equivalent at the configured frequency.
	Cycles  int64
	Seconds float64
	// QPS is batch throughput; MeanLatencySeconds the per-query latency.
	QPS                float64
	MeanLatencySeconds float64
	// QueryLatencies holds each query's latency in seconds (baseline
	// mode only). Use LatencyPercentile for summaries.
	QueryLatencies []float64
	// TrafficBytes is total off-chip memory traffic, with per-stream
	// detail in TrafficByStream.
	TrafficBytes    int64
	TrafficByStream map[string]int64
	// ChipEnergyJ is the accelerator energy (activity-based, Table I
	// component model); DRAMEnergyJ the off-chip memory energy.
	ChipEnergyJ, DRAMEnergyJ float64
	// EnergyByModule splits ChipEnergyJ: "cpm", "scm", "mem" (EFM+MAI)
	// and "idle" (leakage across the makespan).
	EnergyByModule map[string]float64
	// PhaseCycles breaks module busy time down by search phase:
	// "filter" and "lut" on the CPM, "scan" (summed over SCMs) and
	// "merge" on the SCMs.
	PhaseCycles map[string]int64
	// Timeline holds execution spans when AcceleratorConfig.Trace is on.
	Timeline []TimelineSpan
}

// Simulate runs the batch with the Section-IV memory-traffic-optimized
// cluster-major schedule — ANNA's high-throughput mode.
func (a *Accelerator) Simulate(queries [][]float32, p SimParams) (*SimReport, error) {
	return a.run(queries, p, true)
}

// SimulateBaseline runs the batch one query at a time — ANNA's low-latency
// mode and the "without optimization" baseline of Section V-B.
func (a *Accelerator) SimulateBaseline(queries [][]float32, p SimParams) (*SimReport, error) {
	return a.run(queries, p, false)
}

func (a *Accelerator) run(queries [][]float32, p SimParams, batched bool) (rep *SimReport, err error) {
	qm, err := toMatrix(queries)
	if err != nil {
		return nil, err
	}
	if qm.Cols != a.inner.Index().D {
		return nil, fmt.Errorf("anna: query dim %d, index dim %d", qm.Cols, a.inner.Index().D)
	}
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("anna: %v", r)
		}
	}()
	res := a.dispatch(qm, p, batched)
	return a.report(res), nil
}

func (a *Accelerator) dispatch(qm *vecmath.Matrix, p SimParams, batched bool) *iacc.Result {
	params := iacc.Params{
		W: p.W, K: p.K,
		SCMsPerQuery:   p.SCMsPerQuery,
		SkipFunctional: p.TimingOnly,
	}
	if batched {
		return a.inner.SearchBatched(qm, params)
	}
	return a.inner.SearchBaseline(qm, params)
}

func (a *Accelerator) report(res *iacc.Result) *SimReport {
	rep := &SimReport{
		Cycles:             int64(res.Cycles),
		Seconds:            res.Seconds,
		QPS:                res.QPS,
		MeanLatencySeconds: res.MeanLatencySeconds,
		QueryLatencies:     res.QueryLatencies,
		TrafficBytes:       res.TotalTrafficBytes,
		TrafficByStream:    make(map[string]int64, len(res.Traffic)),
	}
	for cls, b := range res.Traffic {
		rep.TrafficByStream[cls.String()] = b
	}
	rep.PhaseCycles = map[string]int64{
		"filter": int64(res.Phases.Filter),
		"lut":    int64(res.Phases.LUT),
		"scan":   int64(res.Phases.Scan),
		"merge":  int64(res.Phases.Merge),
	}
	if res.PerQuery != nil {
		rep.Results = make([][]Result, len(res.PerQuery))
		for i, rs := range res.PerQuery {
			rep.Results[i] = toResults(rs)
		}
	}
	for _, sp := range res.Trace {
		rep.Timeline = append(rep.Timeline, TimelineSpan{
			Unit: sp.Resource, Work: sp.Label,
			Start: int64(sp.Start), End: int64(sp.End),
		})
	}

	// Energy: activity-based chip energy from the Table I component
	// model, and DRAM energy from traffic.
	idx := a.inner.Index()
	shape := energy.HWShape{
		NCU: a.cfg.NCU, NU: a.cfg.NU, NSCM: a.cfg.NSCM,
		CodebookBytes: int64(idx.PQ.CodebookBytes()),
		LUTBytes:      int64(idx.PQ.LUTBytes()),
		TopKEntries:   a.cfg.TopK,
		EVBBytes:      a.cfg.EVBBytes,
	}
	hz := a.cfg.FreqGHz * 1e9
	act := energy.Activity{
		MakespanSec:  res.Seconds,
		CPMBusySec:   float64(res.CPMBusy) / hz,
		SCMBusySec:   float64(res.SCMBusy) / hz,
		MemBusySec:   float64(res.DRAMBusy) / hz,
		TrafficBytes: res.TotalTrafficBytes,
	}
	eb := energy.ChipEnergyBreakdown(energy.Model(shape), act)
	rep.ChipEnergyJ = eb.Total()
	rep.EnergyByModule = map[string]float64{
		"cpm": eb.CPMJ, "scm": eb.SCMJ, "mem": eb.MemJ, "idle": eb.IdleJ,
	}
	rep.DRAMEnergyJ = energy.DRAMEnergy(act)
	return rep
}

// LatencyPercentile returns the p-th percentile (0..100, nearest-rank)
// of a latency sample, e.g. from SimReport.QueryLatencies. It returns 0
// for an empty sample and panics on p outside [0, 100].
func LatencyPercentile(latencies []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("anna: percentile %v out of [0,100]", p))
	}
	if len(latencies) == 0 {
		return 0
	}
	sorted := make([]float64, len(latencies))
	copy(sorted, latencies)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted)-1) + 0.5)
	return sorted[rank]
}

// RenderTimeline draws a simulated run's execution spans as an ASCII
// Gantt chart (one row per hardware unit) — a textual Figure 7. width is
// the number of time columns (default 80 when <= 0).
func RenderTimeline(spans []TimelineSpan, width int) string {
	ss := make([]sim.Span, len(spans))
	for i, sp := range spans {
		ss[i] = sim.Span{
			Resource: sp.Unit, Label: sp.Work,
			Start: sim.Cycles(sp.Start), End: sim.Cycles(sp.End),
		}
	}
	return sim.RenderGantt(ss, width)
}

// SiliconReport is the Table I area/power breakdown for a configuration.
type SiliconReport struct {
	Modules      []SiliconModule
	TotalAreaMM2 float64
	TotalPeakW   float64
}

// SiliconModule is one Table I row.
type SiliconModule struct {
	Name    string
	AreaMM2 float64
	PeakW   float64
}

// Silicon returns the accelerator's area and peak power at TSMC 40 nm /
// 1 GHz from the calibrated component model (Table I).
func (a *Accelerator) Silicon() SiliconReport {
	idx := a.inner.Index()
	b := energy.Model(energy.HWShape{
		NCU: a.cfg.NCU, NU: a.cfg.NU, NSCM: a.cfg.NSCM,
		CodebookBytes: int64(idx.PQ.CodebookBytes()),
		LUTBytes:      int64(idx.PQ.LUTBytes()),
		TopKEntries:   a.cfg.TopK,
		EVBBytes:      a.cfg.EVBBytes,
	})
	return SiliconReport{
		Modules: []SiliconModule{
			{b.CPM.Name, b.CPM.AreaMM2, b.CPM.PeakW},
			{b.EFM.Name, b.EFM.AreaMM2, b.EFM.PeakW},
			{b.SCMs.Name + fmt.Sprintf(" (%dx)", a.cfg.NSCM), b.SCMs.AreaMM2, b.SCMs.PeakW},
			{b.MAI.Name, b.MAI.AreaMM2, b.MAI.PeakW},
		},
		TotalAreaMM2: b.TotalArea,
		TotalPeakW:   b.TotalW,
	}
}
