package anna

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"anna/internal/wal"
)

// Replica follows a durable annaserve instance over its replication
// endpoints: it bootstraps from a full state download (/admin/state)
// and then catches up incrementally by replaying WAL frames from its
// sequence position (/admin/wal/tail). Because the leader's state
// bytes are byte-deterministic and the apply step is the same
// applyAddRecord used by local WAL recovery, a replica that has synced
// to position (epoch, seq) holds a bit-identical index to the leader
// at that position — Save on either side produces equal bytes.
//
// When the leader snapshots, its WAL is trimmed and sequence numbers
// restart under a new epoch; the replica's next tail request answers
// 410 Gone and Sync transparently re-bootstraps. The replica therefore
// needs no state of its own to survive leader checkpoints — position
// is re-learned from the download's X-Anna-Epoch/X-Anna-Seq stamps.
//
// Replica is safe for concurrent use; Sync calls are serialized.
type Replica struct {
	base   string
	client *http.Client
	logger *slog.Logger

	mu    sync.Mutex
	idx   *Index
	epoch int64
	seq   uint64

	bootstraps  uint64 // full state downloads performed
	tailRecords uint64 // records applied through tail reads
}

// ReplicaOptions configure a Replica.
type ReplicaOptions struct {
	// Client is the HTTP client for leader requests (default: a client
	// with a 30s timeout).
	Client *http.Client
	// Logger receives bootstrap/catch-up events. Nil silences them.
	Logger *slog.Logger
}

// NewReplica returns a follower of the annaserve at base (e.g.
// "http://10.0.0.7:7080"). No request is made until Sync.
func NewReplica(base string, opt ReplicaOptions) *Replica {
	c := opt.Client
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	return &Replica{base: base, client: c, logger: opt.Logger}
}

// Index returns the replica's current index (nil before the first
// successful Sync). The returned index is live — a concurrent Sync
// mutates it — so callers that serve from it must coordinate, e.g. by
// pausing Syncs or snapshotting with Save.
func (r *Replica) Index() *Index {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.idx
}

// Position returns the replication position the replica has applied up
// to: the leader snapshot epoch and the number of WAL records applied
// on top of it.
func (r *Replica) Position() (epoch int64, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, r.seq
}

// Stats returns how many full bootstraps and incremental tail records
// this replica has performed — the observable split between the
// expensive path and the cheap one.
func (r *Replica) Stats() (bootstraps, tailRecords uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bootstraps, r.tailRecords
}

// Sync brings the replica up to the leader's current position. The
// first call (or any call after the leader trimmed past the replica's
// position) downloads the full state; subsequent calls replay only the
// WAL tail. It returns the number of add records applied this call.
func (r *Replica) Sync(ctx context.Context) (applied int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.idx == nil {
		if err := r.bootstrapLocked(ctx); err != nil {
			return 0, err
		}
		// The bootstrap bytes already contain everything up to the
		// stamped position; fall through to pick up records appended
		// while the download was in flight.
	}
	n, err := r.tailLocked(ctx)
	if err == errReplicaGone {
		// The leader snapshotted since our last position: sequence
		// numbers restarted, so re-learn position from a fresh download.
		if err := r.bootstrapLocked(ctx); err != nil {
			return 0, err
		}
		n, err = r.tailLocked(ctx)
	}
	return n, err
}

// errReplicaGone is the internal marker for a 410 tail response.
var errReplicaGone = fmt.Errorf("replica: %w", ErrTailGone)

// bootstrapLocked downloads the leader's full state and adopts its
// stamped position. Caller holds r.mu.
func (r *Replica) bootstrapLocked(ctx context.Context) error {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/admin/state", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: downloading state: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: /admin/state answered %s", resp.Status)
	}
	epoch, err := strconv.ParseInt(resp.Header.Get(headerEpoch), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: bad %s header: %w", headerEpoch, err)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(headerSeq), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: bad %s header: %w", headerSeq, err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: reading state: %w", err)
	}
	idx, err := LoadIndex(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("replica: loading state: %w", err)
	}
	r.idx, r.epoch, r.seq = idx, epoch, seq
	r.bootstraps++
	if r.logger != nil {
		r.logger.Info("replica bootstrapped", "leader", r.base,
			"vectors", idx.Len(), "bytes", len(body),
			"epoch", epoch, "seq", seq, "duration", time.Since(start))
	}
	return nil
}

// tailLocked fetches and applies WAL records from the replica's
// position. Returns errReplicaGone when the leader answered 410.
// Caller holds r.mu.
func (r *Replica) tailLocked(ctx context.Context) (applied int, err error) {
	url := fmt.Sprintf("%s/admin/wal/tail?epoch=%d&from=%d", r.base, r.epoch, r.seq)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("replica: reading tail: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		io.Copy(io.Discard, resp.Body)
		return 0, errReplicaGone
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replica: /admin/wal/tail answered %s", resp.Status)
	}
	// Buffer before applying: a record half-received over a dying
	// connection must not leave the index half-advanced relative to seq.
	frames, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("replica: reading tail body: %w", err)
	}
	n, err := wal.ReplayFrom(bytes.NewReader(frames), r.seq, func(seq uint64, payload []byte) error {
		_, aerr := applyAddRecord(r.idx, payload)
		return aerr
	})
	r.seq += uint64(n)
	r.tailRecords += uint64(n)
	if err != nil {
		return n, fmt.Errorf("replica: applying tail: %w", err)
	}
	if r.logger != nil && n > 0 {
		r.logger.Info("replica caught up", "leader", r.base,
			"records", n, "epoch", r.epoch, "seq", r.seq)
	}
	return n, nil
}
