package anna

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"anna/internal/ivf"
	"anna/internal/wal"
)

// Crash-safe durability: a Store pairs an atomic checksummed snapshot
// (the ANNAIVF3 artifact) with a write-ahead log of accepted /add
// batches. Every mutation is logged — and, under SyncAlways, fsynced —
// before the client sees an acknowledgment; startup recovery loads the
// snapshot, replays the WAL on top, and truncates at the first torn or
// corrupt record. Acknowledged state therefore survives crashes,
// truncated files and bit flips: damaged inputs are refused with a
// typed error, never silently decoded.

const (
	snapshotName = "snapshot.anna"
	walName      = "wal.log"
)

// SyncPolicy selects when WAL appends are fsynced (see wal.Policy).
type SyncPolicy int

const (
	// SyncAlways fsyncs before every /add acknowledgment: acknowledged
	// vectors survive any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: fsync when StoreOptions.SyncEvery has
	// elapsed since the last one. Bounded loss, amortized fsyncs.
	SyncInterval
	// SyncNone leaves flushing to the OS page cache.
	SyncNone
)

// StoreOptions configure a Store.
type StoreOptions struct {
	Sync SyncPolicy
	// SyncEvery is the SyncInterval group-commit window (default 100ms).
	SyncEvery time.Duration
	// Workers bounds the parallelism of the index's ingest pipeline
	// (Index.SetIngestWorkers): it applies to WAL replay during
	// OpenStore and to every Add served afterwards. 0 = GOMAXPROCS; the
	// resulting index is byte-identical for any value.
	Workers int
	// Logger receives structured lifecycle events: store creation,
	// recovery (replayed records, torn bytes) and snapshots, with
	// durations and sizes attached. Nil silences them.
	Logger *slog.Logger
}

func (o StoreOptions) walOptions() wal.Options {
	p := wal.SyncAlways
	switch o.Sync {
	case SyncInterval:
		p = wal.SyncInterval
	case SyncNone:
		p = wal.SyncNone
	}
	return wal.Options{Policy: p, Interval: o.SyncEvery}
}

// IsCorrupt reports whether err was caused by damaged durable state — a
// corrupt or truncated index file, or an invalid WAL record — as opposed
// to an I/O failure.
func IsCorrupt(err error) bool {
	return errors.Is(err, ivf.ErrCorrupt) || errors.Is(err, wal.ErrCorrupt) || errors.Is(err, errBadRecord)
}

var errBadRecord = errors.New("anna: invalid WAL record")

// ErrTailGone is returned by TailWAL when the requested (epoch, seq)
// position no longer exists — the store has snapshotted and trimmed its
// WAL since the follower last read, so sequence numbers restarted. The
// follower must re-bootstrap from a fresh snapshot instead of tailing.
var ErrTailGone = errors.New("anna: WAL tail position gone (snapshot trimmed the log)")

// Store is the durability layer of a served index: a data directory
// holding snapshot.anna and wal.log.
type Store struct {
	mu  sync.Mutex // serializes WAL appends against snapshot/close
	dir string
	idx *Index
	log *wal.Log
	opt StoreOptions

	replayed  int
	tornBytes int64
	lastSnap  atomic.Int64 // unix nanos of the last completed snapshot
	snapDur   atomic.Int64 // duration of the last snapshot write, nanos
	snapSize  atomic.Int64 // byte size of the snapshot file
	snapshots atomic.Uint64
}

// logger returns the configured structured logger, or nil when the
// store should stay silent.
func (st *Store) logger() *slog.Logger { return st.opt.Logger }

// StoreExists reports whether dir already holds a store snapshot.
func StoreExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, snapshotName))
	return err == nil
}

// CreateStore initialises dir with a snapshot of idx and an empty WAL.
// It refuses a directory that already holds a store (use OpenStore).
func CreateStore(dir string, idx *Index, opt StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snap := filepath.Join(dir, snapshotName)
	if _, err := os.Stat(snap); err == nil {
		return nil, fmt.Errorf("anna: %s already holds a store snapshot; use OpenStore", dir)
	}
	idx.SetIngestWorkers(opt.Workers)
	if err := idx.SaveFile(snap); err != nil {
		return nil, fmt.Errorf("anna: writing initial snapshot: %w", err)
	}
	// O_TRUNC discards any stale WAL left by a process that crashed
	// before its first snapshot completed.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	log, _, err := wal.Open(f, opt.walOptions(), nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	st := &Store{dir: dir, idx: idx, log: log, opt: opt}
	st.lastSnap.Store(time.Now().UnixNano())
	if fi, err := os.Stat(snap); err == nil {
		st.snapSize.Store(fi.Size())
	}
	if l := st.logger(); l != nil {
		l.Info("store created", "dir", dir, "vectors", idx.Len(),
			"snapshot_bytes", st.snapSize.Load())
	}
	return st, nil
}

// OpenStore recovers the index from dir: leftover temp files from an
// interrupted snapshot are swept, the snapshot is loaded (every section
// checksum-verified), and the WAL is replayed on top — skipping records
// the snapshot already contains, truncating at the first torn record,
// and refusing the store if a record is inconsistent with the index.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	snap := filepath.Join(dir, snapshotName)
	if tmps, err := filepath.Glob(snap + ".tmp*"); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	idx, err := LoadIndexFile(snap)
	if err != nil {
		return nil, fmt.Errorf("anna: opening store snapshot: %w", err)
	}
	// Before WAL replay, so recovery Adds run at the configured width.
	idx.SetIngestWorkers(opt.Workers)
	st := &Store{dir: dir, idx: idx, opt: opt}
	if fi, err := os.Stat(snap); err == nil {
		st.lastSnap.Store(fi.ModTime().UnixNano())
	} else {
		st.lastSnap.Store(time.Now().UnixNano())
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	log, rec, err := wal.Open(f, opt.walOptions(), func(seq uint64, payload []byte) error {
		return st.applyRecord(payload)
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("anna: replaying WAL: %w", err)
	}
	st.log = log
	st.tornBytes = rec.TornBytes
	if fi, err := os.Stat(snap); err == nil {
		st.snapSize.Store(fi.Size())
	}
	if l := st.logger(); l != nil {
		l.Info("store recovered", "dir", dir, "vectors", st.idx.Len(),
			"replayed_records", st.replayed, "torn_bytes", rec.TornBytes,
			"wal_records", log.Records(), "wal_bytes", log.Size())
	}
	return st, nil
}

// applyRecord replays one WAL record onto the index. Records fully
// contained in the snapshot (a crash between snapshot rename and WAL
// trim) are skipped by ID; anything else must continue exactly where the
// index ends.
func (st *Store) applyRecord(payload []byte) error {
	applied, err := applyAddRecord(st.idx, payload)
	if err != nil {
		return err
	}
	if applied {
		st.replayed++
	}
	return nil
}

// applyAddRecord replays one add-batch payload onto idx. It is the
// shared apply step of local WAL recovery (Store.applyRecord) and
// follower replication (Replica): records already contained in the
// index are skipped idempotently by ID, and a record that neither
// overlaps nor continues the index is refused — the log and the state
// can never silently diverge. It reports whether the record mutated the
// index.
func applyAddRecord(idx *Index, payload []byte) (applied bool, err error) {
	firstID, vectors, err := decodeAddRecord(payload)
	if err != nil {
		return false, err
	}
	next := idx.NextID()
	if firstID+int64(len(vectors)) <= next {
		return false, nil // already present
	}
	if firstID != next {
		return false, fmt.Errorf("%w: add record for id %d, index expects %d", errBadRecord, firstID, next)
	}
	got, err := idx.Add(vectors)
	if err != nil {
		return false, fmt.Errorf("%w: replaying add at id %d: %v", errBadRecord, firstID, err)
	}
	if got != firstID {
		return false, fmt.Errorf("%w: replay assigned id %d, record says %d", errBadRecord, got, firstID)
	}
	return true, nil
}

// Index returns the recovered (or wrapped) index.
func (st *Store) Index() *Index { return st.idx }

// Dir returns the data directory.
func (st *Store) Dir() string { return st.dir }

// ReplayedRecords returns how many WAL records OpenStore applied.
func (st *Store) ReplayedRecords() int { return st.replayed }

// TornBytes returns how many trailing WAL bytes recovery discarded as
// torn or corrupt.
func (st *Store) TornBytes() int64 { return st.tornBytes }

// LastSnapshot returns when the snapshot was last written.
func (st *Store) LastSnapshot() time.Time { return time.Unix(0, st.lastSnap.Load()) }

// WALRecords returns the number of records in the live WAL segment.
func (st *Store) WALRecords() uint64 { return st.log.Records() }

// WALSize returns the live WAL segment's byte length.
func (st *Store) WALSize() int64 { return st.log.Size() }

// WALStats returns lifetime append/fsync/byte counters.
func (st *Store) WALStats() (appends, fsyncs, bytes uint64) { return st.log.Stats() }

// SetOnSync registers a hook run after every WAL fsync (metrics).
func (st *Store) SetOnSync(fn func()) { st.log.SetOnSync(fn) }

// SetSyncObserver registers a hook receiving every WAL fsync's measured
// duration (the anna_wal_fsync_duration_seconds histogram).
func (st *Store) SetSyncObserver(fn func(time.Duration)) { st.log.SetSyncObserver(fn) }

// SnapshotStats reports the last completed snapshot write: how long the
// atomic save took, the resulting file size, and how many snapshots
// this store has written (not counting the one it was opened from).
func (st *Store) SnapshotStats() (dur time.Duration, sizeBytes int64, count uint64) {
	return time.Duration(st.snapDur.Load()), st.snapSize.Load(), st.snapshots.Load()
}

// LogAdd appends one accepted add batch to the WAL. firstID must be the
// ID the in-memory Add will assign (Index.NextID before applying). When
// LogAdd returns nil under SyncAlways, the batch is durable; when it
// errors, the in-memory index must be left unmodified so state and log
// cannot diverge.
func (st *Store) LogAdd(firstID int64, vectors [][]float32) error {
	payload := encodeAddRecord(firstID, vectors)
	st.mu.Lock()
	defer st.mu.Unlock()
	_, err := st.log.Append(payload)
	return err
}

// Snapshot atomically rewrites snapshot.anna with the current index
// state (temp file + fsync + rename) and then trims the WAL. A crash
// between the two steps is safe: replay skips records the snapshot
// already contains. The caller must exclude concurrent Add/LogAdd (the
// Server holds its index lock); searches may continue.
func (st *Store) Snapshot() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	start := time.Now()
	path := filepath.Join(st.dir, snapshotName)
	if err := st.idx.SaveFile(path); err != nil {
		return fmt.Errorf("anna: writing snapshot: %w", err)
	}
	if err := st.log.Reset(); err != nil {
		return fmt.Errorf("anna: trimming WAL: %w", err)
	}
	dur := time.Since(start)
	st.snapDur.Store(int64(dur))
	if fi, err := os.Stat(path); err == nil {
		st.snapSize.Store(fi.Size())
	}
	st.snapshots.Add(1)
	st.lastSnap.Store(time.Now().UnixNano())
	if l := st.logger(); l != nil {
		l.Info("snapshot written", "dir", st.dir, "vectors", st.idx.Len(),
			"duration", dur, "bytes", st.snapSize.Load())
	}
	return nil
}

// Epoch identifies the snapshot generation WAL sequence numbers are
// relative to. Snapshot trims the WAL and restarts sequences at zero,
// so a bare sequence number is ambiguous across snapshots; the epoch
// (the nanosecond timestamp of the snapshot) disambiguates. A follower
// that presents a stale epoch gets ErrTailGone and re-bootstraps.
func (st *Store) Epoch() int64 { return st.lastSnap.Load() }

// TailPosition returns the store's current replication position: the
// snapshot epoch and the number of WAL records appended on top of it.
// The pair is read atomically with respect to Snapshot and LogAdd, so
// a state download stamped with it can be caught up by TailWAL(epoch,
// seq) without losing or double-applying a record.
func (st *Store) TailPosition() (epoch int64, seq uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastSnap.Load(), st.log.Records()
}

// TailWAL streams the WAL records with sequence >= from, re-framed in
// wire format (wal.AppendFrame / wal.ReplayFrom decode them), to w.
// epoch must be the store's current Epoch: a mismatch — or a from past
// the end of the log — returns ErrTailGone, telling the follower its
// position predates a snapshot trim and it must re-bootstrap. The
// frames are assembled under the store lock (so a concurrent Snapshot
// cannot trim the log mid-read) but written to w after it is released.
func (st *Store) TailWAL(w io.Writer, epoch int64, from uint64) error {
	st.mu.Lock()
	if epoch != st.lastSnap.Load() || from > st.log.Records() {
		st.mu.Unlock()
		return ErrTailGone
	}
	var frames []byte
	err := st.log.ReadFrom(from, func(seq uint64, payload []byte) error {
		frames = wal.AppendFrame(frames, seq, payload)
		return nil
	})
	st.mu.Unlock()
	if err != nil {
		return fmt.Errorf("anna: reading WAL tail: %w", err)
	}
	_, err = w.Write(frames)
	return err
}

// Close syncs and closes the WAL. It does not snapshot; call Snapshot
// first for a trimmed restart.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.log.Close()
}

// Add-record payload (little endian):
//
//	kind    uint8 (1 = add batch)
//	firstID int64
//	count   uint32, dim uint32
//	count*dim float32
const addRecordKind = 1

func encodeAddRecord(firstID int64, vectors [][]float32) []byte {
	dim := 0
	if len(vectors) > 0 {
		dim = len(vectors[0])
	}
	b := make([]byte, 0, 17+4*len(vectors)*dim)
	b = append(b, addRecordKind)
	b = binary64(b, uint64(firstID))
	b = binary32(b, uint32(len(vectors)))
	b = binary32(b, uint32(dim))
	for _, v := range vectors {
		for _, f := range v {
			b = binary32(b, math.Float32bits(f))
		}
	}
	return b
}

func binary32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func binary64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func decodeAddRecord(b []byte) (firstID int64, vectors [][]float32, err error) {
	if len(b) < 17 {
		return 0, nil, fmt.Errorf("%w: %d-byte add record", errBadRecord, len(b))
	}
	if b[0] != addRecordKind {
		return 0, nil, fmt.Errorf("%w: unknown record kind %d", errBadRecord, b[0])
	}
	firstID = int64(leU64(b[1:9]))
	count := leU32(b[9:13])
	dim := leU32(b[13:17])
	if firstID < 0 || count == 0 || dim == 0 || dim > 1<<16 {
		return 0, nil, fmt.Errorf("%w: firstID=%d count=%d dim=%d", errBadRecord, firstID, count, dim)
	}
	if uint64(len(b)-17) != 4*uint64(count)*uint64(dim) {
		return 0, nil, fmt.Errorf("%w: %d payload bytes for count=%d dim=%d", errBadRecord, len(b)-17, count, dim)
	}
	vectors = make([][]float32, count)
	off := 17
	for i := range vectors {
		row := make([]float32, dim)
		for j := range row {
			f := math.Float32frombits(leU32(b[off : off+4]))
			if f64 := float64(f); math.IsNaN(f64) || math.IsInf(f64, 0) {
				return 0, nil, fmt.Errorf("%w: non-finite component %v in vector %d", errBadRecord, f, i)
			}
			row[j] = f
			off += 4
		}
		vectors[i] = row
	}
	return firstID, vectors, nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}
