package anna

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Server wraps an Index behind an HTTP JSON API — the deployment shape
// of a similarity-search service (the paper's motivating recommender /
// semantic-search backends). Endpoints:
//
//	POST /search  {"queries": [[...]], "w": 32, "k": 10}
//	              -> {"results": [[{"id":..,"score":..},...]]}
//	POST /add     {"vectors": [[...]]} -> {"first_id": N, "count": M}
//	GET  /stats   -> index statistics
//	GET  /healthz -> 200 ok
//
// Add is serialised against searches with a read-write lock; searches
// run concurrently.
type Server struct {
	mu  sync.RWMutex
	idx *Index
	// MaxBatch bounds queries per /search request (default 1024).
	MaxBatch int
	// DefaultW / DefaultK apply when a request omits them.
	DefaultW, DefaultK int
	// Accelerator, when set, lets requests with "backend":"anna" run on
	// the simulated ANNA instead of the software engine; the response
	// then carries the simulated cost (cycles, traffic, energy).
	Accelerator *Accelerator
}

// NewServer returns a Server for idx.
func NewServer(idx *Index) *Server {
	return &Server{idx: idx, MaxBatch: 1024, DefaultW: 32, DefaultK: 10}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/add", s.handleAdd)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type searchRequest struct {
	Queries [][]float32 `json:"queries"`
	W       int         `json:"w"`
	K       int         `json:"k"`
	// Backend selects "software" (default) or "anna" (the simulated
	// accelerator; requires Server.Accelerator).
	Backend string `json:"backend"`
}

type searchResult struct {
	ID    int64   `json:"id"`
	Score float32 `json:"score"`
}

type searchResponse struct {
	Results [][]searchResult `json:"results"`
	// Simulated-accelerator cost, present for backend "anna".
	Cycles       int64   `json:"cycles,omitempty"`
	TrafficBytes int64   `json:"traffic_bytes,omitempty"`
	ChipEnergyJ  float64 `json:"chip_energy_j,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "no queries")
		return
	}
	if len(req.Queries) > s.MaxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), s.MaxBatch)
		return
	}
	if req.W <= 0 {
		req.W = s.DefaultW
	}
	if req.K <= 0 {
		req.K = s.DefaultK
	}

	var resp searchResponse
	switch req.Backend {
	case "", "software":
		s.mu.RLock()
		rep, err := s.idx.SearchBatch(req.Queries, SearchOptions{
			W: req.W, K: req.K, Mode: ClusterMajor,
		})
		s.mu.RUnlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, "search: %v", err)
			return
		}
		resp.Results = toSearchResults(rep.Results)
	case "anna":
		if s.Accelerator == nil {
			httpError(w, http.StatusBadRequest, "no accelerator configured on this server")
			return
		}
		s.mu.RLock()
		rep, err := s.Accelerator.Simulate(req.Queries, SimParams{W: req.W, K: req.K})
		s.mu.RUnlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, "simulating: %v", err)
			return
		}
		resp.Results = toSearchResults(rep.Results)
		resp.Cycles = rep.Cycles
		resp.TrafficBytes = rep.TrafficBytes
		resp.ChipEnergyJ = rep.ChipEnergyJ
	default:
		httpError(w, http.StatusBadRequest, "unknown backend %q", req.Backend)
		return
	}
	writeJSON(w, resp)
}

func toSearchResults(in [][]Result) [][]searchResult {
	out := make([][]searchResult, len(in))
	for i, rs := range in {
		row := make([]searchResult, len(rs))
		for j, res := range rs {
			row[j] = searchResult{ID: res.ID, Score: res.Score}
		}
		out[i] = row
	}
	return out
}

type addRequest struct {
	Vectors [][]float32 `json:"vectors"`
}

type addResponse struct {
	FirstID int64 `json:"first_id"`
	Count   int   `json:"count"`
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req addRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	s.mu.Lock()
	first, err := s.idx.Add(req.Vectors)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "add: %v", err)
		return
	}
	writeJSON(w, addResponse{FirstID: first, Count: len(req.Vectors)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.RLock()
	st := s.idx.Stats()
	metric := s.idx.Metric().String()
	dim := s.idx.Dim()
	s.mu.RUnlock()
	writeJSON(w, map[string]any{
		"vectors":           st.Vectors,
		"clusters":          st.Clusters,
		"dim":               dim,
		"metric":            metric,
		"code_bytes":        st.CodeBytesPerVector,
		"total_code_bytes":  st.TotalCodeBytes,
		"compression_ratio": st.CompressionRatio,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
