package anna

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"anna/internal/adaptive"
	"anna/internal/metrics"
	"anna/internal/qos"
	"anna/internal/slo"
	"anna/internal/trace"
	"anna/internal/tsdb"
)

// Server wraps an Index behind an HTTP JSON API — the deployment shape
// of a similarity-search service (the paper's motivating recommender /
// semantic-search backends). Endpoints:
//
//	POST /search  {"queries": [[...]], "w": 32, "k": 10}
//	              -> {"results": [[{"id":..,"score":..},...]]}
//	POST /add     {"vectors": [[...]]} -> {"first_id": N, "count": M}
//	GET  /stats   -> index statistics + serving latency quantiles
//	POST /admin/snapshot -> checkpoint the index and trim the WAL
//	              (requires a Store; see below)
//	GET  /admin/state -> full serialized index for follower bootstrap,
//	              stamped X-Anna-Epoch/X-Anna-Seq (requires a Store)
//	GET  /admin/wal/tail?epoch=E&from=N -> WAL frames from seq N for
//	              follower catch-up; 410 Gone after a snapshot trim
//	GET  /healthz -> 200 ok (liveness)
//	GET  /readyz  -> 200 ready (readiness; a booting process answers
//	              503 through ReadinessGate until recovery completes)
//	GET  /metrics -> Prometheus text exposition (see docs/ARCHITECTURE.md
//	                 for the full metric list)
//	GET  /debug/queries     -> recent sampled/slow query traces, slowest first
//	GET  /debug/trace/{id}  -> one trace by query ID
//	GET  /debug/pprof/* -> runtime profiles (unless DisablePprof)
//
// Every /search response carries an X-Request-ID header: the client's,
// when it sent one (such a query is always traced), or a generated ID
// otherwise. Beyond the explicit opt-in, 1-in-TraceSampleEvery queries
// are traced, and any query slower than SlowQuery is captured and
// logged even when it missed the sample.
//
// Add is serialised against searches with a read-write lock; searches
// run concurrently. Every request is recorded into the server's metrics
// registry: request counts and latency per handler and status code, and
// per-stage engine timings (cluster select / list scan / top-k merge)
// per search.
type Server struct {
	mu  sync.RWMutex
	idx *Index
	// MaxBatch bounds queries per /search request (default 1024).
	MaxBatch int
	// DefaultW / DefaultK apply when a request omits them.
	DefaultW, DefaultK int
	// Accelerator, when set, lets requests with "backend":"anna" run on
	// the simulated ANNA instead of the software engine; the response
	// then carries the simulated cost (cycles, traffic, energy).
	Accelerator *Accelerator
	// MaxInFlight caps concurrently admitted /search requests; excess
	// requests are rejected immediately with 429 so overload sheds load
	// instead of queueing without bound. Zero means unlimited.
	MaxInFlight int
	// SearchTimeout, when positive, bounds each /search request: the
	// deadline propagates through context into the engine's worker pool,
	// which abandons the batch mid-scan, and the client gets 504.
	SearchTimeout time.Duration
	// DisablePprof removes the /debug/pprof endpoints from Handler.
	DisablePprof bool
	// Logger receives structured serving events: slow queries, snapshot
	// and encode failures (default slog.Default()).
	Logger *slog.Logger
	// TraceSampleEvery traces 1-in-N queries that did not opt in with an
	// X-Request-ID header (default 64; negative disables sampling).
	// Read once at first request, like the other trace knobs.
	TraceSampleEvery int
	// SlowQuery is the latency threshold above which a /search request
	// is logged and captured even when untraced (default 250ms;
	// negative disables the slow-query log).
	SlowQuery time.Duration
	// TraceRingSize bounds the in-memory buffer of recent traces served
	// by /debug/queries (default 256, rounded up to a power of two).
	TraceRingSize int
	// Recall, when set, shadow-checks a sample of served software-backend
	// queries against exact search and publishes live recall@k metrics
	// through /metrics. See RecallEstimator.
	Recall *RecallEstimator
	// Store, when set, makes /add durable: each accepted batch is
	// appended to the write-ahead log (fsynced per the store's sync
	// policy) before the in-memory apply and the acknowledgment, and
	// POST /admin/snapshot checkpoints the index and trims the WAL.
	// Store.Index() must be the same Index the server wraps.
	Store *Store
	// SnapshotEvery, when positive with Store set, auto-checkpoints
	// after that many vectors have been added since the last snapshot.
	SnapshotEvery int
	// BatchWindow bounds how long a single-query /search may be held so
	// concurrent requests coalesce into one ClusterMajor engine batch
	// (default 1ms; negative disables the dynamic batcher). Coalescing
	// is bit-exact with per-request execution — the engine's per-query
	// state is independent of batch composition — it only amortizes
	// cluster selection and inverted-list loads the way the paper's
	// Figure 5 batches do. Multi-query requests are already engine
	// batches and always run directly.
	BatchWindow time.Duration
	// BatchMaxSize flushes a forming coalesced batch early once it
	// holds this many queries (default 64).
	BatchMaxSize int
	// BatchMaxConcurrent bounds coalesced batches executing at once
	// (default GOMAXPROCS). The bound is what gives the QoS lanes
	// teeth: overload backs up in the batcher queue — where
	// interactive-lane requests are dequeued ahead of bulk — instead of
	// racing into the engine in arrival order.
	BatchMaxConcurrent int
	// CacheSize bounds the result cache in entries (default 4096;
	// negative disables it). The cache is keyed on the index's own PQ
	// code of the query plus (w, k); only the software backend is
	// cached, hits require the exact query vector, and every /add
	// invalidates the whole cache (generation-checked, so a search that
	// raced the add can never store a stale row).
	CacheSize int
	// Tenants maps API keys (X-API-Key header, or Authorization:
	// Bearer) to QoS classes: token-bucket quotas, weighted-fair batch
	// share, and the interactive/bulk lane. Nil serves all traffic as
	// one unlimited interactive tenant.
	Tenants *qos.Tenants
	// Adaptive configures per-query effort: a static early-termination /
	// precision-escalation policy applied to every software search, or —
	// with RecallTarget set and Recall attached — a closed-loop
	// controller that tunes the policy against the live recall estimate.
	// Set before the first request, like the trace knobs.
	Adaptive AdaptiveServing
	// ScrapeEvery is the embedded tsdb's scrape interval: how often the
	// serving counters are snapshotted into the ring behind /debug/tsdb
	// and the SLO burn-rate engine ticks (default 10s; negative disables
	// the tsdb, the SLO engine, /alerts and /debug/dash entirely). Read
	// once at Handler time, like the trace knobs.
	ScrapeEvery time.Duration
	// SLOLatencyP99 enables the latency SLO: at most 1% of /search
	// requests may be slower than this bound (the bound snaps to the
	// nearest latency-histogram bucket edge). Zero disables it.
	SLOLatencyP99 time.Duration
	// SLOAvailability enables the availability SLO with this objective
	// (e.g. 0.999 = at most 0.1% of requests may end in 5xx). Zero
	// disables it.
	SLOAvailability float64
	// SLORecall enables the recall SLO: the rolling shadow-recall
	// estimate (requires Recall) must not dip under this target on more
	// than 1% of scrapes. Zero disables it.
	SLORecall float64
	// SLOOptions override the burn-rate windows and thresholds (zero
	// values = the 5m/1h + 30m/6h defaults); tests shrink them.
	SLOOptions slo.Options

	adaptOnce sync.Once                      // registers adaptive metrics / starts the controller once
	ctrlOnce  sync.Once                      // Close stops the controller exactly once
	knobs     atomic.Pointer[adaptive.Knobs] // controller operating point (nil = static policy)
	effort    atomic.Int64                   // controller effort level, surfaced in traces
	ctrlStop  chan struct{}
	ctrlDone  chan struct{}

	inflight   atomic.Int64
	addedSince atomic.Int64 // vectors added since the last snapshot
	durOnce    sync.Once    // registers durability metrics exactly once
	traceOnce  sync.Once    // builds the trace recorder exactly once
	rec        *trace.Recorder
	recallOnce sync.Once // registers recall metrics exactly once
	qosOnce    sync.Once // builds batcher/cache exactly once
	batcher    atomic.Pointer[qos.Batcher[servedRow]]
	cache      atomic.Pointer[qos.Cache[servedRow]]
	m          *serverMetrics

	obsOnce  sync.Once // builds the tsdb + SLO engine exactly once
	db       *tsdb.DB
	sloEng   *slo.Engine
	resps    atomic.Uint64 // responses served (tsdb availability signal)
	resps5xx atomic.Uint64 // responses with a 5xx status
}

// servedRow is one query's served results plus the cache generation
// they were computed at (see qos.Cache) and the stage timings of the
// engine batch that produced them, so a coalesced query that later
// proves slow can still report select/scan/merge spans.
type servedRow struct {
	res              []Result
	gen              uint64
	sel, scan, merge time.Duration
	rerank           time.Duration
	scanned          int64
	clusters         int64
	escalated        int64
	effort           int
}

// AdaptiveServing configures the serving layer's per-query effort (see
// docs/ARCHITECTURE.md §4j). The zero value disables everything.
type AdaptiveServing struct {
	// Policy is the static per-query effort policy applied to every
	// software search. Under a RecallTarget controller it instead seeds
	// the effort ladder: Policy.StopPatience becomes the cheap end's
	// patience and Policy.EscalateFactor/Margin the escalation knobs at
	// full effort.
	Policy AdaptiveOptions
	// RecallTarget, in (0, 1], enables the closed-loop controller: it
	// reads the shadow recall estimator (Server.Recall must be set) and
	// walks an effort ladder — effective W, stop patience, escalation
	// margin — to hold the rolling recall at the target with minimum
	// work. Knob changes are logged and exported as anna_adaptive_knob.
	RecallTarget float64
	// Interval is the controller tick (default 1s).
	Interval time.Duration
	// MinW / MaxW bound the controller's effective-W ladder (defaults
	// max(1, DefaultW/8) and DefaultW). The effective W applies only to
	// requests that do not pin their own "w".
	MinW, MaxW int
	// Levels / Hysteresis / MinSamples / Deadband tune the controller
	// (defaults per adaptive.ControllerConfig).
	Levels     int
	Hysteresis int
	MinSamples uint64
	Deadband   float64
}

// active reports whether any adaptive behaviour is configured.
func (a AdaptiveServing) active() bool {
	return a.Policy.Enabled() || a.RecallTarget > 0
}

// adaptiveKnobs returns the operating point for the next search: the
// controller's current knobs when the closed loop runs, the static
// policy otherwise. ok is false when adaptive serving is off entirely.
func (s *Server) adaptiveKnobs() (kn adaptive.Knobs, effort int, ok bool) {
	if k := s.knobs.Load(); k != nil {
		return *k, int(s.effort.Load()), true
	}
	p := s.Adaptive.Policy
	if !p.Enabled() {
		return adaptive.Knobs{}, 0, false
	}
	return adaptive.Knobs{
		StopPatience:   p.StopPatience,
		MinClusters:    p.MinClusters,
		EscalateFactor: p.EscalateFactor,
		Margin:         p.Margin,
	}, 0, true
}

// controllerConfig builds the effort ladder from the serving knobs. The
// cheap end terminates scans aggressively at a narrow W with no
// escalation; the expensive end scans MaxW clusters with patience equal
// to the full width (termination effectively off) and the configured
// escalation margin. Start is the top — the controller relaxes downward
// from the safe operating point.
func (s *Server) controllerConfig() adaptive.ControllerConfig {
	a := s.Adaptive
	p := a.Policy
	maxW := a.MaxW
	if maxW <= 0 {
		maxW = s.DefaultW
	}
	if maxW < 1 {
		maxW = 32
	}
	minW := a.MinW
	if minW <= 0 {
		minW = maxW / 8
	}
	if minW < 1 {
		minW = 1
	}
	minc := p.MinClusters
	if minc < 1 {
		minc = 1
	}
	patLow := p.StopPatience
	if patLow <= 0 {
		patLow = 1
	}
	levels := a.Levels
	if levels <= 0 {
		levels = 8
	}
	return adaptive.ControllerConfig{
		Target:     a.RecallTarget,
		Deadband:   a.Deadband,
		Hysteresis: a.Hysteresis,
		MinSamples: a.MinSamples,
		Low: adaptive.Knobs{W: minW, StopPatience: patLow, MinClusters: minc,
			EscalateFactor: p.EscalateFactor, Margin: 0},
		High: adaptive.Knobs{W: maxW, StopPatience: maxW, MinClusters: minc,
			EscalateFactor: p.EscalateFactor, Margin: p.Margin},
		Levels: levels,
		Start:  levels,
	}
}

// initAdaptive registers the adaptive instruments and, when a
// RecallTarget is set with an estimator attached, starts the controller
// goroutine. Idempotent, called from Handler.
func (s *Server) initAdaptive() {
	if !s.Adaptive.active() {
		return
	}
	s.adaptOnce.Do(func() {
		reg := s.m.reg
		s.m.adaptClusters = reg.Counter("anna_adaptive_clusters_scanned",
			"Inverted lists scanned by adaptive searches (fewer than queries*W under early termination).")
		s.m.adaptEsc = reg.Counter("anna_adaptive_escalations_total",
			"Candidates re-scored through the SQ8 precision-escalation band.")
		knob := func(name string, get func(kn adaptive.Knobs, effort int) float64) {
			reg.GaugeFunc("anna_adaptive_knob",
				"Current adaptive operating point by knob.",
				func() float64 { kn, eff, _ := s.adaptiveKnobs(); return get(kn, eff) },
				metrics.Label{Key: "name", Value: name})
		}
		knob("w", func(kn adaptive.Knobs, _ int) float64 {
			if kn.W > 0 {
				return float64(kn.W)
			}
			return float64(s.DefaultW)
		})
		knob("stop_patience", func(kn adaptive.Knobs, _ int) float64 { return float64(kn.StopPatience) })
		knob("escalate_factor", func(kn adaptive.Knobs, _ int) float64 { return float64(kn.EscalateFactor) })
		knob("margin", func(kn adaptive.Knobs, _ int) float64 { return float64(kn.Margin) })
		knob("effort", func(_ adaptive.Knobs, eff int) float64 { return float64(eff) })

		if s.Adaptive.RecallTarget <= 0 || s.Recall == nil {
			return
		}
		ctrl := adaptive.NewController(s.controllerConfig())
		kn := ctrl.Knobs()
		s.knobs.Store(&kn)
		s.effort.Store(int64(ctrl.Level()))
		interval := s.Adaptive.Interval
		if interval <= 0 {
			interval = time.Second
		}
		s.ctrlStop = make(chan struct{})
		s.ctrlDone = make(chan struct{})
		go s.controllerLoop(ctrl, interval)
	})
}

// controllerLoop drives the recall-SLO controller: each tick feeds the
// estimator's rolling recall and processed-sample count into the state
// machine and publishes the resulting knobs for searches to pick up.
func (s *Server) controllerLoop(ctrl *adaptive.Controller, interval time.Duration) {
	defer close(s.ctrlDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctrlStop:
			return
		case <-t.C:
			rolling := s.Recall.Rolling()
			_, _, _, processed := s.Recall.Stats()
			kn, changed := ctrl.Observe(rolling, processed)
			if !changed {
				continue
			}
			k := kn
			s.knobs.Store(&k)
			s.effort.Store(int64(ctrl.Level()))
			s.slogger().Info("adaptive controller stepped",
				"recall", rolling,
				"target", s.Adaptive.RecallTarget,
				"effort", ctrl.Level(), "max_effort", ctrl.MaxLevel(),
				"w", kn.W, "stop_patience", kn.StopPatience,
				"escalate_factor", kn.EscalateFactor, "margin", kn.Margin,
				"steps", ctrl.Steps())
		}
	}
}

// serverMetrics bundles the registry and the pre-created instruments of
// the serving path (dynamically labelled series — the per-status-code
// request counters — are fetched from the registry on demand).
type serverMetrics struct {
	reg *metrics.Registry

	reqDuration map[string]*metrics.Histogram // per handler
	stage       map[string]*metrics.Histogram // select / scan / merge
	queries     *metrics.Counter
	scanned     *metrics.Counter
	listBytes   *metrics.Counter
	rejected    *metrics.Counter
	added       *metrics.Counter
	batchSize   *metrics.Histogram
	batchWait   *metrics.Histogram
	flushes     *metrics.Counter
	rejectDepth *metrics.Histogram
	walAppend   *metrics.Histogram
	walFsync    *metrics.Histogram
	snapDur     *metrics.Histogram

	// adaptive instruments, nil until initAdaptive.
	adaptClusters *metrics.Counter
	adaptEsc      *metrics.Counter
}

// stageNames are the per-request engine stage histograms exported as
// anna_stage_duration_seconds{stage=...}. rerank only observes non-zero
// values under adaptive precision escalation.
var stageNames = []string{"select", "scan", "rerank", "merge"}

func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:         reg,
		reqDuration: map[string]*metrics.Histogram{},
		stage:       map[string]*metrics.Histogram{},
		queries: reg.Counter("anna_search_queries_total",
			"Queries executed by the software engine."),
		scanned: reg.Counter("anna_scanned_vectors_total",
			"(query, vector) similarity computations performed."),
		listBytes: reg.Counter("anna_list_bytes_read_total",
			"Inverted-list code bytes read by scans."),
		rejected: reg.Counter("anna_rejected_requests_total",
			"Requests rejected at admission.", metrics.Label{Key: "reason", Value: "overload"}),
		added: reg.Counter("anna_added_vectors_total",
			"Vectors ingested through /add."),
		batchSize: reg.Histogram("anna_batch_size_queries",
			"Queries per coalesced engine batch.", metrics.ExpBuckets(1, 2, 11)),
		batchWait: reg.Histogram("anna_batch_coalesce_wait_seconds",
			"Time a query spent parked in the batcher before its batch started.",
			metrics.ExpBuckets(50e-6, 2, 16)),
		flushes: reg.Counter("anna_batch_flushes_total",
			"Coalesced engine batches executed."),
		rejectDepth: reg.Histogram("anna_rejected_queue_depth",
			"Batcher queue depth observed at each 429 rejection.",
			metrics.ExpBuckets(1, 2, 16)),
	}
	for _, h := range []string{"search", "add", "stats", "snapshot", "state", "tail"} {
		m.reqDuration[h] = reg.Histogram("anna_request_duration_seconds",
			"Wall-clock request latency by handler.", nil,
			metrics.Label{Key: "handler", Value: h})
	}
	for _, st := range stageNames {
		m.stage[st] = reg.Histogram("anna_stage_duration_seconds",
			"Per-request engine stage time, summed across workers.", nil,
			metrics.Label{Key: "stage", Value: st})
	}
	reg.GaugeFunc("anna_inflight_requests",
		"Admitted /search requests currently executing.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("anna_engine_queue_depth",
		"Engine work items admitted to the worker pool but not yet started.",
		func() float64 { q, _ := s.idx.EnginePoolStats(); return float64(q) })
	reg.GaugeFunc("anna_engine_inflight_queries",
		"Engine work items executing on workers right now.",
		func() float64 { _, f := s.idx.EnginePoolStats(); return float64(f) })
	reg.GaugeFunc("anna_index_vectors",
		"Vectors in the index.",
		func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(s.idx.Len()) })
	reg.GaugeFunc("anna_batch_queue_depth",
		"Queries parked in the dynamic batcher awaiting a flush.",
		func() float64 {
			if b := s.batcher.Load(); b != nil {
				return float64(b.QueueDepth())
			}
			return 0
		})
	reg.GaugeFunc("anna_cache_entries",
		"Entries in the result cache.",
		func() float64 {
			if c := s.cache.Load(); c != nil {
				return float64(c.Len())
			}
			return 0
		})
	cacheStat := func(pick func(h, m, e, i uint64) uint64) func() uint64 {
		return func() uint64 {
			if c := s.cache.Load(); c != nil {
				return pick(c.Stats())
			}
			return 0
		}
	}
	reg.CounterFunc("anna_cache_hits_total", "Result-cache hits.",
		cacheStat(func(h, _, _, _ uint64) uint64 { return h }))
	reg.CounterFunc("anna_cache_misses_total", "Result-cache misses.",
		cacheStat(func(_, m, _, _ uint64) uint64 { return m }))
	reg.CounterFunc("anna_cache_evictions_total", "Result-cache LRU evictions.",
		cacheStat(func(_, _, e, _ uint64) uint64 { return e }))
	reg.CounterFunc("anna_cache_invalidations_total", "Result-cache invalidations (corpus changes).",
		cacheStat(func(_, _, _, i uint64) uint64 { return i }))
	metrics.RegisterRuntime(reg)
	return m
}

// NewServer returns a Server for idx.
func NewServer(idx *Index) *Server {
	s := &Server{idx: idx, MaxBatch: 1024, DefaultW: 32, DefaultK: 10}
	s.m = newServerMetrics(s)
	return s
}

// Metrics returns the server's metrics registry, so embedding programs
// can export their own instruments through the same /metrics endpoint.
func (s *Server) Metrics() *metrics.Registry { return s.m.reg }

// registerDurable creates the durability instruments once a Store is
// attached. Idempotent: Handler may be called more than once, but the
// recovery counter must be seeded and the fsync hook installed exactly
// once.
func (s *Server) registerDurable() {
	if s.Store == nil {
		return
	}
	s.durOnce.Do(func() {
		reg := s.m.reg
		s.m.walAppend = reg.Histogram("anna_wal_append_duration_seconds",
			"WAL append latency per /add batch, including fsync under SyncAlways.", nil)
		s.m.walFsync = reg.Histogram("anna_wal_fsync_duration_seconds",
			"WAL fsync latency per sync call.", nil)
		s.Store.SetSyncObserver(s.m.walFsync.ObserveDuration)
		s.m.snapDur = reg.Histogram("anna_snapshot_duration_seconds",
			"Snapshot write duration (atomic save, fsync, WAL trim).", nil)
		reg.GaugeFunc("anna_snapshot_size_bytes",
			"Byte size of the last written snapshot.",
			func() float64 { _, size, _ := s.Store.SnapshotStats(); return float64(size) })
		reg.CounterFunc("anna_snapshots_total",
			"Snapshots written (manual, automatic, and shutdown).",
			func() uint64 { _, _, n := s.Store.SnapshotStats(); return n })
		fsyncs := reg.Counter("anna_wal_fsync_total", "WAL fsync calls.")
		s.Store.SetOnSync(fsyncs.Inc)
		reg.Counter("anna_recovery_replayed_records_total",
			"WAL records replayed onto the snapshot at startup.").
			Add(uint64(s.Store.ReplayedRecords()))
		reg.GaugeFunc("anna_last_snapshot_age_seconds",
			"Seconds since the snapshot was last written.",
			func() float64 { return time.Since(s.Store.LastSnapshot()).Seconds() })
		reg.GaugeFunc("anna_wal_records",
			"Records in the live WAL segment.",
			func() float64 { return float64(s.Store.WALRecords()) })
		reg.GaugeFunc("anna_wal_size_bytes",
			"Byte length of the live WAL segment.",
			func() float64 { return float64(s.Store.WALSize()) })
	})
}

// slogger returns the server's structured logger.
func (s *Server) slogger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// tracer returns the server's trace recorder, building it from the
// Trace* / SlowQuery knobs on first use (set them before serving).
func (s *Server) tracer() *trace.Recorder {
	s.traceOnce.Do(func() {
		sample := s.TraceSampleEvery
		if sample == 0 {
			sample = 64
		}
		slow := s.SlowQuery
		if slow == 0 {
			slow = 250 * time.Millisecond
		}
		s.rec = trace.NewRecorder(s.TraceRingSize, sample, slow, s.slogger())
	})
	return s.rec
}

// registerRecall publishes the attached RecallEstimator's instruments
// through the server registry exactly once.
func (s *Server) registerRecall() {
	if s.Recall == nil {
		return
	}
	s.recallOnce.Do(func() { s.Recall.Register(s.m.reg) })
}

// initQoS builds the dynamic batcher, result cache, and tenant table
// from the Batch*/CacheSize/Tenants knobs exactly once (set them before
// the first request, like the trace knobs).
func (s *Server) initQoS() {
	s.qosOnce.Do(func() {
		if s.CacheSize >= 0 {
			size := s.CacheSize
			if size == 0 {
				size = 4096
			}
			s.cache.Store(qos.NewCache[servedRow](size))
		}
		if s.BatchWindow >= 0 {
			conc := s.BatchMaxConcurrent
			if conc <= 0 {
				conc = runtime.GOMAXPROCS(0)
			}
			s.batcher.Store(qos.NewBatcher(s.runCoalesced, qos.BatcherOptions{
				Window:        s.BatchWindow,
				MaxBatch:      s.BatchMaxSize,
				MaxConcurrent: conc,
				Observer: qos.Observer{
					Flush: func(size, _ int) {
						s.m.flushes.Inc()
						s.m.batchSize.Observe(float64(size))
					},
					Wait: s.m.batchWait.ObserveDuration,
				},
			}))
		}
		if s.Tenants == nil {
			s.Tenants = qos.NewTenants(qos.TenantConfig{})
		}
	})
}

// Close releases the server's background resources: it closes the
// batcher and waits until every in-flight coalesced batch has executed
// and fanned its results out, so the index and store underneath can be
// snapshotted and torn down without racing a pending flush window.
// Callers shut the HTTP listener down first (http.Server.Shutdown), so
// by the time Close drains no new Submits arrive.
func (s *Server) Close() {
	if s.ctrlStop != nil {
		s.ctrlOnce.Do(func() { close(s.ctrlStop) })
		<-s.ctrlDone
	}
	if b := s.batcher.Load(); b != nil {
		b.Drain()
	}
	if s.db != nil {
		s.db.Close()
	}
}

// searchLocked runs one software-backend engine batch under the read
// lock and feeds the shared metrics/recall instruments. The cache
// generation is snapshotted under the same lock the engine runs under,
// so a row carrying it can never be stored after an invalidation that
// its search did not observe.
func (s *Server) searchLocked(ctx context.Context, queries [][]float32, w, k int) ([]servedRow, *BatchReport, error) {
	opt := SearchOptions{W: w, K: k, Mode: ClusterMajor}
	kn, effort, adaptOn := s.adaptiveKnobs()
	if adaptOn {
		// The engine forces query-at-a-time under an enabled policy;
		// disabled knob values keep this bit-identical to the fixed path.
		opt.Adaptive = AdaptiveOptions{
			StopPatience:   kn.StopPatience,
			MinClusters:    kn.MinClusters,
			EscalateFactor: kn.EscalateFactor,
			Margin:         kn.Margin,
		}
	}
	s.mu.RLock()
	var gen uint64
	if c := s.cache.Load(); c != nil {
		gen = c.Gen()
	}
	rep, err := s.idx.SearchBatchContext(ctx, queries, opt)
	s.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	s.recordSearch(len(queries), rep, adaptOn)
	if s.Recall != nil {
		s.Recall.OfferBatch(queries, rep.Results)
	}
	rows := make([]servedRow, len(rep.Results))
	for i, r := range rep.Results {
		rows[i] = servedRow{
			res: r, gen: gen,
			sel: rep.SelectTime, scan: rep.ScanTime, merge: rep.MergeTime,
			rerank:   rep.RerankTime,
			scanned:  rep.ScannedVectors,
			clusters: rep.ClustersScanned, escalated: rep.Escalations,
			effort: effort,
		}
	}
	return rows, rep, nil
}

// runCoalesced is the batcher's RunFunc: one coalesced flush.
func (s *Server) runCoalesced(ctx context.Context, queries [][]float32, w, k int) ([]servedRow, error) {
	rows, _, err := s.searchLocked(ctx, queries, w, k)
	return rows, err
}

// appendCacheKey builds the result-cache key for one query: the search
// knobs followed by the index's PQ code of the query. Only the software
// backend is cached, so the backend is not part of the key. When
// adaptive serving is active the effort knobs join the key, so a
// controller step makes prior entries unreachable instead of serving
// results computed at a different operating point. (A step landing
// inside a request's coalescing window can still cache a row under the
// neighbouring rung — one window of staleness, one ladder level apart.)
func (s *Server) appendCacheKey(dst []byte, q []float32, w, k int) []byte {
	dst = binary.AppendUvarint(dst, uint64(w))
	dst = binary.AppendUvarint(dst, uint64(k))
	if kn, _, ok := s.adaptiveKnobs(); ok {
		dst = binary.AppendUvarint(dst, uint64(kn.StopPatience))
		dst = binary.AppendUvarint(dst, uint64(kn.MinClusters))
		dst = binary.AppendUvarint(dst, uint64(kn.EscalateFactor))
		dst = binary.AppendUvarint(dst, uint64(math.Float32bits(kn.Margin)))
	}
	return s.idx.AppendQueryCode(dst, q)
}

// tenantFor resolves the request's QoS tenant from the X-API-Key
// header (or an Authorization: Bearer token). Nil only before initQoS.
func (s *Server) tenantFor(r *http.Request) *qos.Tenant {
	if s.Tenants == nil {
		return nil
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
			key = auth[7:]
		}
	}
	return s.Tenants.Resolve(key)
}

// retryAfterJitter picks a 1–3s Retry-After so rejected clients do not
// re-converge on the same instant. The math lives in qos so the router
// retry loop shares it.
func retryAfterJitter() int { return qos.RetryAfterSeconds() }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	s.registerDurable()
	s.registerRecall()
	s.initAdaptive()
	s.initQoS()
	s.initObs()
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("/add", s.instrument("add", s.handleAdd))
	mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/admin/snapshot", s.instrument("snapshot", s.handleSnapshot))
	mux.HandleFunc("/admin/state", s.instrument("state", s.handleAdminState))
	mux.HandleFunc("/admin/wal/tail", s.instrument("tail", s.handleWALTail))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	// By the time this handler serves traffic, construction — snapshot
	// load and WAL replay included — has finished; a booting process
	// answers 503 through the ReadinessGate wrapper instead.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("/metrics", s.m.reg.Handler())
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/trace/{id}", s.handleDebugTrace)
	if s.db != nil {
		mux.Handle("/debug/tsdb", s.db.Handler())
		mux.Handle("/alerts", s.sloEng.Handler())
		mux.Handle("/debug/dash", slo.DashHandler("annaserve"))
	}
	if !s.DisablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency
// recording under anna_http_requests_total / anna_request_duration_seconds.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.m.reqDuration[name].ObserveDuration(time.Since(start))
		s.resps.Add(1)
		if sw.code >= 500 {
			s.resps5xx.Add(1)
		}
		s.m.reg.Counter("anna_http_requests_total", "Requests by handler and status code.",
			metrics.Label{Key: "handler", Value: name},
			metrics.Label{Key: "code", Value: strconv.Itoa(sw.code)}).Inc()
	}
}

// statusClientClosedRequest is nginx's convention for "the client went
// away before we could answer" (there is no standard HTTP code for it).
const statusClientClosedRequest = 499

// searchErrStatus maps a SearchBatchContext error to a response code.
func searchErrStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

type searchRequest struct {
	Queries [][]float32 `json:"queries"`
	W       int         `json:"w"`
	K       int         `json:"k"`
	// Backend selects "software" (default) or "anna" (the simulated
	// accelerator; requires Server.Accelerator).
	Backend string `json:"backend"`
}

type searchResult struct {
	ID    int64   `json:"id"`
	Score float32 `json:"score"`
}

type searchResponse struct {
	Results [][]searchResult `json:"results"`
	// Simulated-accelerator cost, present for backend "anna".
	Cycles       int64   `json:"cycles,omitempty"`
	TrafficBytes int64   `json:"traffic_bytes,omitempty"`
	ChipEnergyJ  float64 `json:"chip_energy_j,omitempty"`
}

// admit reserves an in-flight slot, or reports overload.
func (s *Server) admit() bool {
	if s.MaxInFlight <= 0 {
		s.inflight.Add(1)
		return true
	}
	if s.inflight.Add(1) > int64(s.MaxInFlight) {
		s.inflight.Add(-1)
		return false
	}
	return true
}

// requestIDHeader carries the query ID: echoed back when the client
// sets it (which also forces a trace), generated otherwise.
const requestIDHeader = "X-Request-ID"

// searchScratch is the pooled per-request working set of handleSearch:
// the decoded request (inner query buffers included), the cache-key
// buffer, the per-query row table, and the response arena. Everything
// that outlives the request copies out of these buffers (the batcher
// and cache copy queries; the response is encoded before the handler
// returns), so the whole set recycles alloc-free.
type searchScratch struct {
	req    searchRequest
	key    []byte
	rows   []servedRow
	miss   [][]float32
	missAt []int
	out    [][]searchResult
	arena  []searchResult
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// appendResults builds the response rows in sc's pooled arena.
func appendResults(sc *searchScratch, rows []servedRow) [][]searchResult {
	total := 0
	for _, r := range rows {
		total += len(r.res)
	}
	if cap(sc.arena) < total {
		sc.arena = make([]searchResult, 0, total)
	}
	arena := sc.arena[:0]
	if cap(sc.out) < len(rows) {
		sc.out = make([][]searchResult, len(rows))
	}
	out := sc.out[:len(rows)]
	for i, r := range rows {
		lo := len(arena)
		for _, res := range r.res {
			arena = append(arena, searchResult{ID: res.ID, Score: res.Score})
		}
		out[i] = arena[lo:len(arena):len(arena)]
	}
	sc.arena = arena
	return out
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.admit() {
		depth := 0
		if b := s.batcher.Load(); b != nil {
			depth = b.QueueDepth()
		}
		s.m.rejected.Inc()
		s.m.rejectDepth.Observe(float64(depth))
		retry := retryAfterJitter()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.writeJSONStatus(w, http.StatusTooManyRequests, map[string]any{
			"error":               fmt.Sprintf("server at max in-flight (%d); retry later", s.MaxInFlight),
			"queue_depth":         depth,
			"retry_after_seconds": retry,
		})
		return
	}
	defer s.inflight.Add(-1)

	start := time.Now()
	// Wire trace context (X-Anna-Trace) arrives from an upstream router
	// hop: adopting its ID keys this shard-side trace for stitching, and
	// the parent names which hop span it hangs under. Both parses are
	// allocation-free on the common (absent-header) path.
	wireID, wireParent := trace.ParseWire(r.Header.Get(trace.HeaderWire))
	reqID := r.Header.Get(requestIDHeader)
	if reqID == "" {
		reqID = wireID
	}
	tagged := reqID != ""
	if !tagged {
		reqID = trace.NewID()
	}
	w.Header().Set(requestIDHeader, reqID)
	tnt := s.tenantFor(r)

	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)
	req := &sc.req
	// The decoder leaves absent fields untouched, so reset what the
	// previous request may have set; the query buffers are kept for
	// reuse.
	req.Queries = req.Queries[:0]
	req.W, req.K, req.Backend = 0, 0, ""
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		s.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		s.httpError(w, http.StatusBadRequest, "no queries")
		return
	}
	if len(req.Queries) > s.MaxBatch {
		s.httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), s.MaxBatch)
		return
	}
	if req.W <= 0 {
		req.W = s.DefaultW
		// Under the recall-SLO controller the effective W is a tuned
		// knob; a request that pins its own "w" is always honoured.
		if kn := s.knobs.Load(); kn != nil && kn.W > 0 {
			req.W = kn.W
		}
	}
	if req.K <= 0 {
		req.K = s.DefaultK
	}
	backend := req.Backend
	if backend == "" {
		backend = "software"
	}
	if tnt != nil && !tnt.Allow(len(req.Queries)) {
		s.m.reg.Counter("anna_rejected_requests_total",
			"Requests rejected at admission.", metrics.Label{Key: "reason", Value: "quota"}).Inc()
		s.m.reg.Counter("anna_throttled_requests_total",
			"Requests rejected by per-tenant token-bucket quota.",
			metrics.Label{Key: "tenant", Value: tnt.Name}).Inc()
		retry := retryAfterJitter()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.writeJSONStatus(w, http.StatusTooManyRequests, map[string]any{
			"error":               fmt.Sprintf("tenant %q over quota; retry later", tnt.Name),
			"retry_after_seconds": retry,
		})
		return
	}

	// Tracing decision: client-tagged requests are always traced; the
	// rest pay one atomic add to roll the 1-in-N sample. The untraced
	// path allocates nothing here (benchmark-pinned in internal/trace).
	rec := s.tracer()
	var tr *trace.Trace
	if tagged || rec.ShouldSample() {
		tr = trace.New(reqID)
		tr.Start = start
		tr.Parent = wireParent
		tr.Queries, tr.W, tr.K, tr.Backend = len(req.Queries), req.W, req.K, backend
		if tnt != nil {
			tr.Tenant = tnt.Name
		}
	}
	// finish closes out a live trace with the response status. Slow
	// untraced requests are reconstructed after the fact in the
	// backend arms below — only requests that already proved slow pay
	// that cost.
	finish := func(status int) {
		if tr != nil {
			tr.Finish(status)
			rec.Record(tr)
		}
	}

	// The request context carries client disconnects into the engine;
	// SearchTimeout adds the server-side deadline on top.
	ctx := r.Context()
	if s.SearchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.SearchTimeout)
		defer cancel()
	}
	if tr != nil {
		ctx = trace.NewContext(ctx, tr)
	}

	var resp searchResponse
	switch req.Backend {
	case "", "software":
		dim := s.idx.Dim()
		for i, q := range req.Queries {
			if len(q) != dim {
				finish(http.StatusBadRequest)
				s.httpError(w, http.StatusBadRequest, "query %d dim %d, index dim %d", i, len(q), dim)
				return
			}
		}
		cache := s.cache.Load()
		nq := len(req.Queries)
		if cap(sc.rows) < nq {
			sc.rows = make([]servedRow, nq)
		}
		rows := sc.rows[:nq]
		// Split the request into cache hits and misses; only the misses
		// reach the engine.
		miss, missAt := sc.miss[:0], sc.missAt[:0]
		for i, q := range req.Queries {
			if cache != nil {
				sc.key = s.appendCacheKey(sc.key[:0], q, req.W, req.K)
				if row, ok := cache.Get(sc.key, q); ok {
					rows[i] = row
					continue
				}
			}
			miss = append(miss, q)
			missAt = append(missAt, i)
		}
		sc.miss, sc.missAt = miss, missAt
		switch {
		case len(miss) == 0:
			if tr != nil {
				tr.CacheHit = true
			}
		default:
			if b := s.batcher.Load(); b != nil && nq == 1 && len(miss) == 1 && tr == nil {
				// Single-query requests ride the dynamic batcher so
				// concurrent traffic shares one ClusterMajor engine run.
				// Multi-query requests are already engine batches, and
				// sampled/tagged requests run directly so their engine
				// spans attach to the trace.
				lane, weight, tname := qos.Interactive, 1, "default"
				if tnt != nil {
					lane, weight, tname = tnt.Lane, tnt.Weight, tnt.Name
				}
				row, info, err := b.Submit(ctx, tname, lane, weight, miss[0], req.W, req.K)
				if err != nil {
					finish(searchErrStatus(err))
					s.httpError(w, searchErrStatus(err), "search: %v", err)
					return
				}
				rows[missAt[0]] = row
				if rec.IsSlow(time.Since(start)) {
					tr = s.slowTrace(reqID, start, req, backend)
					tr.Tenant = tname
					tr.Batch = info.Size
					tr.AddSpan("coalesce", info.Wait)
					// Stage spans of the engine batch the query rode in.
					tr.AddSpan("select", row.sel)
					tr.AddSpan("scan", row.scan)
					if row.rerank > 0 {
						tr.AddSpan("rerank", row.rerank)
					}
					tr.AddSpan("merge", row.merge)
					tr.Scanned = row.scanned
					tr.ClustersScanned = row.clusters
					tr.Escalated = row.escalated
					tr.Effort = row.effort
				}
			} else {
				mrows, rep, err := s.searchLocked(ctx, miss, req.W, req.K)
				if err != nil {
					finish(searchErrStatus(err))
					s.httpError(w, searchErrStatus(err), "search: %v", err)
					return
				}
				for j, at := range missAt {
					rows[at] = mrows[j]
				}
				if tr == nil && rec.IsSlow(time.Since(start)) {
					tr = s.slowTrace(reqID, start, req, backend)
					if tnt != nil {
						tr.Tenant = tnt.Name
					}
					tr.AddSpan("select", rep.SelectTime)
					tr.AddSpan("scan", rep.ScanTime)
					if rep.RerankTime > 0 {
						tr.AddSpan("rerank", rep.RerankTime)
					}
					tr.AddSpan("merge", rep.MergeTime)
					tr.Scanned = rep.ScannedVectors
					tr.ClustersScanned = rep.ClustersScanned
					tr.Escalated = rep.Escalations
				}
			}
			if cache != nil {
				for _, at := range missAt {
					q := req.Queries[at]
					sc.key = s.appendCacheKey(sc.key[:0], q, req.W, req.K)
					cache.Put(sc.key, q, rows[at], rows[at].gen)
				}
			}
		}
		// Live traces get clusters_scanned/escalated attached inside the
		// engine (via the trace context); the effort level is a serving
		// concern, stamped here.
		if tr != nil {
			if _, eff, ok := s.adaptiveKnobs(); ok {
				tr.Effort = eff
			}
		}
		resp.Results = appendResults(sc, rows)
	case "anna":
		if s.Accelerator == nil {
			finish(http.StatusBadRequest)
			s.httpError(w, http.StatusBadRequest, "no accelerator configured on this server")
			return
		}
		simStart := time.Now()
		s.mu.RLock()
		rep, err := s.Accelerator.Simulate(req.Queries, SimParams{W: req.W, K: req.K})
		s.mu.RUnlock()
		simDur := time.Since(simStart)
		if err != nil {
			finish(http.StatusBadRequest)
			s.httpError(w, http.StatusBadRequest, "simulating: %v", err)
			return
		}
		if tr == nil && rec.IsSlow(time.Since(start)) {
			tr = s.slowTrace(reqID, start, req, backend)
		}
		if tr != nil {
			tr.AddSpan("simulate", simDur)
		}
		resp.Results = toSearchResults(rep.Results)
		resp.Cycles = rep.Cycles
		resp.TrafficBytes = rep.TrafficBytes
		resp.ChipEnergyJ = rep.ChipEnergyJ
	default:
		finish(http.StatusBadRequest)
		s.httpError(w, http.StatusBadRequest, "unknown backend %q", req.Backend)
		return
	}
	finish(http.StatusOK)
	s.writeJSON(w, resp)
}

// slowTrace reconstructs a trace for a request that missed sampling but
// crossed the slow threshold.
func (s *Server) slowTrace(id string, start time.Time, req *searchRequest, backend string) *trace.Trace {
	tr := trace.New(id)
	tr.Start = start
	tr.Queries, tr.W, tr.K, tr.Backend = len(req.Queries), req.W, req.K, backend
	return tr
}

// handleDebugQueries serves the recent trace buffer, slowest first, so
// an operator's first look lands on the worst recent requests. ?n=
// bounds the response (default all buffered).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	traces := s.tracer().Snapshot()
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Total > traces[j].Total })
	if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(traces) {
		traces = traces[:n]
	}
	total, slow := s.tracer().Recorded()
	s.writeJSON(w, map[string]any{
		"recorded_total": total,
		"slow_total":     slow,
		"count":          len(traces),
		"traces":         traces,
	})
}

// handleDebugTrace serves one trace by query ID, while it is still in
// the ring.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := r.PathValue("id")
	t := s.tracer().Get(id)
	if t == nil {
		s.httpError(w, http.StatusNotFound, "no buffered trace with id %q (evicted or never traced)", id)
		return
	}
	s.writeJSON(w, t)
}

// recordSearch feeds one software-backend batch report into the metrics.
func (s *Server) recordSearch(nq int, rep *BatchReport, adaptOn bool) {
	s.m.queries.Add(uint64(nq))
	s.m.scanned.Add(uint64(rep.ScannedVectors))
	s.m.listBytes.Add(uint64(rep.ListBytesTouched))
	s.m.stage["select"].ObserveDuration(rep.SelectTime)
	s.m.stage["scan"].ObserveDuration(rep.ScanTime)
	if rep.RerankTime > 0 {
		s.m.stage["rerank"].ObserveDuration(rep.RerankTime)
	}
	s.m.stage["merge"].ObserveDuration(rep.MergeTime)
	if adaptOn && s.m.adaptClusters != nil {
		s.m.adaptClusters.Add(uint64(rep.ClustersScanned))
		s.m.adaptEsc.Add(uint64(rep.Escalations))
	}
}

func toSearchResults(in [][]Result) [][]searchResult {
	out := make([][]searchResult, len(in))
	for i, rs := range in {
		row := make([]searchResult, len(rs))
		for j, res := range rs {
			row[j] = searchResult{ID: res.ID, Score: res.Score}
		}
		out[i] = row
	}
	return out
}

type addRequest struct {
	Vectors [][]float32 `json:"vectors"`
}

type addResponse struct {
	FirstID int64 `json:"first_id"`
	Count   int   `json:"count"`
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req addRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Vectors) == 0 {
		s.httpError(w, http.StatusBadRequest, "no vectors")
		return
	}
	// Validate before taking the write lock: a bad vector must not stall
	// in-flight searches, and NaN/Inf would silently poison k-means
	// assignment and PQ codes.
	if err := validateAddVectors(req.Vectors, s.idx.Dim()); err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	// Write-ahead: the batch reaches the log (and, under SyncAlways,
	// the disk) before the in-memory apply, so a crash after the
	// acknowledgment below can always replay it. A failed append leaves
	// the index unmodified — state and log cannot diverge.
	if s.Store != nil {
		start := time.Now()
		err := s.Store.LogAdd(s.idx.NextID(), req.Vectors)
		if s.m.walAppend != nil {
			s.m.walAppend.ObserveDuration(time.Since(start))
		}
		if err != nil {
			s.mu.Unlock()
			s.httpError(w, http.StatusInternalServerError, "wal append: %v", err)
			return
		}
	}
	first, err := s.idx.Add(req.Vectors)
	if err == nil {
		// Invalidate under the write lock: searches snapshot the cache
		// generation under the read lock, so any search that computed
		// against the pre-add corpus sees a stale generation and its
		// results are dropped instead of cached.
		if c := s.cache.Load(); c != nil {
			c.Invalidate()
		}
	}
	s.mu.Unlock()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "add: %v", err)
		return
	}
	s.m.added.Add(uint64(len(req.Vectors)))
	s.writeJSON(w, addResponse{FirstID: first, Count: len(req.Vectors)})

	if s.Store != nil && s.SnapshotEvery > 0 &&
		s.addedSince.Add(int64(len(req.Vectors))) >= int64(s.SnapshotEvery) {
		if err := s.snapshotNow(); err != nil {
			s.slogger().Error("auto-snapshot failed", "err", err)
		}
	}
}

// snapshotNow checkpoints the index and trims the WAL. The read lock
// excludes concurrent adds (which need the write lock) while letting
// searches proceed against the immutable model.
func (s *Server) snapshotNow() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.Store.Snapshot(); err != nil {
		return err
	}
	s.addedSince.Store(0)
	if s.m.snapDur != nil {
		d, _, _ := s.Store.SnapshotStats()
		s.m.snapDur.ObserveDuration(d)
	}
	return nil
}

type snapshotResponse struct {
	Vectors    int   `json:"vectors"`
	WALRecords int64 `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
}

// handleAdd's WAL grows until a snapshot trims it; POST /admin/snapshot
// lets operators (or a cron job) checkpoint under load.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.Store == nil {
		s.httpError(w, http.StatusServiceUnavailable, "no durable store configured (run annaserve with -data)")
		return
	}
	if err := s.snapshotNow(); err != nil {
		s.httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	s.mu.RLock()
	n := s.idx.Len()
	s.mu.RUnlock()
	s.writeJSON(w, snapshotResponse{
		Vectors:    n,
		WALRecords: int64(s.Store.WALRecords()),
		WALBytes:   s.Store.WALSize(),
	})
}

// Replication wire headers: every /admin/state response is stamped with
// the (epoch, seq) position its bytes represent, so the follower knows
// exactly where to start tailing.
const (
	headerEpoch = "X-Anna-Epoch"
	headerSeq   = "X-Anna-Seq"
)

// handleAdminState serves a full state download for follower bootstrap:
// the index in its canonical serialized form (bit-identical to SaveFile,
// so a follower that loads it and replays the same records converges on
// byte-equal state), stamped with the replication position the bytes
// correspond to. Adds are excluded for the duration of the read lock,
// which makes the (state, epoch, seq) triple consistent.
func (s *Server) handleAdminState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.Store == nil {
		s.httpError(w, http.StatusServiceUnavailable, "no durable store configured (run annaserve with -data)")
		return
	}
	s.mu.RLock()
	epoch, seq := s.Store.TailPosition()
	var buf bytes.Buffer
	err := s.idx.Save(&buf)
	s.mu.RUnlock()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "serializing state: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set(headerEpoch, strconv.FormatInt(epoch, 10))
	w.Header().Set(headerSeq, strconv.FormatUint(seq, 10))
	w.Write(buf.Bytes())
}

// handleWALTail streams WAL records from a sequence number so a
// follower can catch up without a full state download:
//
//	GET /admin/wal/tail?epoch=E&from=N
//
// The response body is wal wire frames (decode with wal.ReplayFrom). A
// stale epoch or an out-of-range from answers 410 Gone — the log was
// trimmed by a snapshot since the follower last read, and it must
// re-bootstrap from /admin/state.
func (s *Server) handleWALTail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.Store == nil {
		s.httpError(w, http.StatusServiceUnavailable, "no durable store configured (run annaserve with -data)")
		return
	}
	epoch, err := strconv.ParseInt(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad epoch: %v", err)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	// TailWAL assembles the frames under the store lock and writes them
	// in one call only on success, so an error here still has the
	// response status to itself.
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.Store.TailWAL(w, epoch, from); err != nil {
		if errors.Is(err, ErrTailGone) {
			s.httpError(w, http.StatusGone, "tail position gone; re-bootstrap from /admin/state")
			return
		}
		s.httpError(w, http.StatusInternalServerError, "reading tail: %v", err)
		return
	}
}

// validateAddVectors rejects dimension mismatches and non-finite
// components. NaN/Inf cannot arrive through well-formed JSON, but the
// Server API is also used embedded (examples/serving), where they can.
func validateAddVectors(vectors [][]float32, dim int) error {
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("vector %d has dim %d, index dim %d", i, len(v), dim)
		}
		for j, f := range v {
			if f64 := float64(f); math.IsNaN(f64) || math.IsInf(f64, 0) {
				return fmt.Errorf("vector %d component %d is %v (must be finite)", i, j, f)
			}
		}
	}
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.RLock()
	st := s.idx.Stats()
	metric := s.idx.Metric().String()
	dim := s.idx.Dim()
	s.mu.RUnlock()
	resp := map[string]any{
		"vectors":           st.Vectors,
		"clusters":          st.Clusters,
		"dim":               dim,
		"metric":            metric,
		"code_bytes":        st.CodeBytesPerVector,
		"total_code_bytes":  st.TotalCodeBytes,
		"compression_ratio": st.CompressionRatio,
	}
	if c := s.cache.Load(); c != nil {
		hits, misses, evictions, invalidations := c.Stats()
		resp["cache"] = map[string]any{
			"entries":       c.Len(),
			"hits":          hits,
			"misses":        misses,
			"evictions":     evictions,
			"invalidations": invalidations,
		}
	}
	if b := s.batcher.Load(); b != nil {
		resp["batch_queue_depth"] = b.QueueDepth()
	}
	if kn, eff, ok := s.adaptiveKnobs(); ok {
		w := kn.W
		if w <= 0 {
			w = s.DefaultW
		}
		ad := map[string]any{
			"w":               w,
			"stop_patience":   kn.StopPatience,
			"min_clusters":    kn.MinClusters,
			"escalate_factor": kn.EscalateFactor,
			"margin":          kn.Margin,
		}
		if s.knobs.Load() != nil {
			ad["effort"] = eff
			ad["recall_target"] = s.Adaptive.RecallTarget
			if s.Recall != nil {
				ad["recall_rolling"] = s.Recall.Rolling()
			}
		}
		resp["adaptive"] = ad
	}
	// Serving latency quantiles, once there is traffic to summarise.
	if h := s.m.reqDuration["search"]; h.Count() > 0 {
		resp["search_latency_seconds"] = map[string]any{
			"count": h.Count(),
			"p50":   h.Quantile(0.50),
			"p95":   h.Quantile(0.95),
			"p99":   h.Quantile(0.99),
		}
	}
	s.writeJSON(w, resp)
}

// writeJSON sends v with a 200. The Content-Type header is set before
// the status line goes out (headers are immutable afterwards), and
// encode failures — a closed connection, an unmarshalable value — are
// logged rather than swallowed.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	s.writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus sends v with an explicit status code (the 429 paths
// attach structured bodies — queue depth, retry hints — to non-200s).
func (s *Server) writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.slogger().Error("encoding response failed", "err", err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}); err != nil {
		s.slogger().Error("encoding error response failed", "err", err)
	}
}
