package anna_test

import (
	"fmt"
	"math/rand"

	"anna"
)

// demoVectors builds a small deterministic clustered dataset.
func demoVectors(n, d int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 8)
	for i := range centers {
		centers[i] = make([]float32, d)
		for j := range centers[i] {
			centers[i][j] = float32(rng.NormFloat64()) * 2
		}
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())*0.3
		}
		out[i] = v
	}
	return out
}

func ExampleBuildIndex() {
	vectors := demoVectors(2000, 16, 1)
	idx, err := anna.BuildIndex(vectors, anna.L2, anna.BuildOptions{
		NClusters: 16, M: 4, Ks: 16, TrainIters: 6, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	st := idx.Stats()
	fmt.Printf("%d vectors in %d clusters, %d bytes per code\n",
		st.Vectors, st.Clusters, st.CodeBytesPerVector)
	// Output:
	// 2000 vectors in 16 clusters, 2 bytes per code
}

func ExampleIndex_Search() {
	vectors := demoVectors(2000, 16, 1)
	idx, err := anna.BuildIndex(vectors, anna.L2, anna.BuildOptions{
		NClusters: 16, M: 4, Ks: 16, TrainIters: 6, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	// Query with a database vector: it ranks first (distance ~0).
	results := idx.Search(vectors[7], 16, 3)
	fmt.Printf("top result: id=%d\n", results[0].ID)
	// Output:
	// top result: id=7
}

func ExampleAccelerator_Simulate() {
	vectors := demoVectors(2000, 16, 1)
	idx, err := anna.BuildIndex(vectors, anna.L2, anna.BuildOptions{
		NClusters: 16, M: 4, Ks: 16, TrainIters: 6, Seed: 42,
		HardwareFaithful: true,
	})
	if err != nil {
		panic(err)
	}
	cfg := anna.DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := anna.NewAccelerator(idx, cfg)
	if err != nil {
		panic(err)
	}
	queries := [][]float32{vectors[7]}
	rep, err := acc.Simulate(queries, anna.SimParams{W: 4, K: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top result id=%d, traffic > 0: %v, cycles > 0: %v\n",
		rep.Results[0][0].ID, rep.TrafficBytes > 0, rep.Cycles > 0)
	// Output:
	// top result id=7, traffic > 0: true, cycles > 0: true
}

func ExampleIndex_SearchRerank() {
	vectors := demoVectors(2000, 16, 1)
	idx, err := anna.BuildIndex(vectors, anna.L2, anna.BuildOptions{
		NClusters: 16, M: 4, Ks: 16, TrainIters: 6, Seed: 42,
		RetainForRerank: true,
	})
	if err != nil {
		panic(err)
	}
	// Re-score the top-3*4 PQ candidates with 8-bit reconstructions.
	refined, err := idx.SearchRerank(vectors[7], 16, 3, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("refined top result: id=%d\n", refined[0].ID)
	// Output:
	// refined top result: id=7
}

func ExampleIndex_TuneW() {
	vectors := demoVectors(2000, 16, 1)
	idx, err := anna.BuildIndex(vectors, anna.L2, anna.BuildOptions{
		NClusters: 16, M: 4, Ks: 16, TrainIters: 6, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	queries := demoVectors(8, 16, 2)
	w, recall, ok, err := idx.TuneW(vectors, queries, 5, 50, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("target met: %v, recall >= 0.80: %v, W in range: %v\n",
		ok, recall >= 0.8, w >= 1 && w <= 16)
	// Output:
	// target met: true, recall >= 0.80: true, W in range: true
}

func ExampleRecall() {
	truth := []int64{1, 2, 3, 4}
	got := []anna.Result{{ID: 1, Score: 9}, {ID: 9, Score: 8}, {ID: 3, Score: 7}}
	fmt.Println(anna.Recall(4, 3, truth, got))
	// Output:
	// 0.5
}
