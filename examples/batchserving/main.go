// Batchserving: the Section IV memory traffic optimization in action.
// Serves the same query batch through the simulated ANNA accelerator in
// both execution modes — query-at-a-time (baseline) and cluster-major
// (optimized) — and shows where the speedup comes from: encoded-vector
// reuse. Also sweeps the SCMs-per-query allocation (inter- vs
// intra-query parallelism, Section IV-A).
//
// Run with: go run ./examples/batchserving
package main

import (
	"fmt"
	"log"

	"anna"
	"anna/internal/dataset"
)

func main() {
	// A deep-descriptor-like workload with a batch sized so several
	// queries visit each cluster (the regime the optimization targets).
	const n, batch, w = 50000, 96, 12
	ds := dataset.Generate(dataset.DeepLike(n, batch, 5))
	base := rows(ds.Base.Rows, ds.Base.Row)
	queries := rows(ds.Queries.Rows, ds.Queries.Row)

	idx, err := anna.BuildIndex(base, anna.L2, anna.BuildOptions{
		NClusters: 100, M: 48, Ks: 256,
		TrainIters: 8, MaxTrain: 12000, Seed: 11, HardwareFaithful: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := anna.DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := anna.NewAccelerator(idx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	params := anna.SimParams{W: w, K: 20}
	baseRep, err := acc.SimulateBaseline(queries, params)
	if err != nil {
		log.Fatal(err)
	}
	optRep, err := acc.Simulate(queries, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("batch of %d queries, W=%d, |C|=%d (avg %.1f queries/cluster)\n\n",
		batch, w, idx.NClusters(), float64(batch*w)/float64(idx.NClusters()))
	fmt.Printf("%-22s %14s %14s\n", "", "baseline", "optimized")
	fmt.Printf("%-22s %14d %14d\n", "cycles", baseRep.Cycles, optRep.Cycles)
	fmt.Printf("%-22s %14.0f %14.0f\n", "QPS", baseRep.QPS, optRep.QPS)
	fmt.Printf("%-22s %13.1fK %13.1fK\n", "total traffic",
		float64(baseRep.TrafficBytes)/1024, float64(optRep.TrafficBytes)/1024)
	fmt.Printf("%-22s %13.1fK %13.1fK\n", "encoded-vector bytes",
		float64(baseRep.TrafficByStream["codes"])/1024,
		float64(optRep.TrafficByStream["codes"])/1024)
	fmt.Printf("%-22s %14s %13.1fK\n", "top-k save/restore", "-",
		float64(optRep.TrafficByStream["topk"])/1024)
	fmt.Printf("\nspeedup %.2fx, code-traffic reduction %.2fx\n",
		optRep.QPS/baseRep.QPS,
		float64(baseRep.TrafficByStream["codes"])/float64(optRep.TrafficByStream["codes"]))

	// Results are identical either way — the optimization only reorders.
	same := true
	for qi := range optRep.Results {
		for i := range optRep.Results[qi] {
			if optRep.Results[qi][i].Score != baseRep.Results[qi][i].Score {
				same = false
			}
		}
	}
	fmt.Printf("result scores identical across modes: %v\n", same)

	// SCM allocation sweep (Section IV-A): few queries per cluster favors
	// intra-query parallelism; many favor inter-query.
	fmt.Println("\nSCMs per query (intra-query parallelism) sweep:")
	for _, s := range []int{1, 2, 4, 8, 16} {
		rep, err := acc.Simulate(queries, anna.SimParams{
			W: w, K: 20, SCMsPerQuery: s, TimingOnly: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  s=%2d: %8.0f QPS, top-k traffic %6.1fK\n",
			s, rep.QPS, float64(rep.TrafficByStream["topk"])/1024)
	}
	auto, err := acc.Simulate(queries, anna.SimParams{W: w, K: 20, TimingOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  auto (paper heuristic): %.0f QPS\n", auto.QPS)
}

func rows(n int, row func(int) []float32) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = row(i)
	}
	return out
}
