// Serving: run the HTTP similarity-search service in-process and
// exercise it as a client — build an index, serve it, add vectors over
// the wire, and query with JSON. This is the deployment shape of the
// recommender/semantic-search backends the paper's introduction
// motivates.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"anna"
)

func main() {
	// Build a small catalog.
	rng := rand.New(rand.NewSource(3))
	base := vectors(rng, 10000, 48)
	idx, err := anna.BuildIndex(base, anna.L2, anna.BuildOptions{
		NClusters: 64, M: 12, Ks: 16, TrainIters: 6, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serve on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: anna.NewServer(idx).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("serving %d vectors on %s\n", idx.Len(), baseURL)

	// Stats.
	var stats map[string]any
	getJSON(baseURL+"/stats", &stats)
	fmt.Printf("stats: %v vectors, %v clusters, compression %.0f:1\n",
		stats["vectors"], stats["clusters"], stats["compression_ratio"])

	// Search with a known vector.
	var sr struct {
		Results [][]struct {
			ID    int64   `json:"id"`
			Score float32 `json:"score"`
		} `json:"results"`
	}
	postJSON(baseURL+"/search", map[string]any{
		"queries": [][]float32{base[42]}, "w": 16, "k": 3,
	}, &sr)
	fmt.Printf("search for vector 42: top hit id=%d score=%.3f\n",
		sr.Results[0][0].ID, sr.Results[0][0].Score)

	// Add new vectors over the wire, then find one of them.
	newVecs := vectors(rng, 5, 48)
	var ar struct {
		FirstID int64 `json:"first_id"`
		Count   int   `json:"count"`
	}
	postJSON(baseURL+"/add", map[string]any{"vectors": newVecs}, &ar)
	fmt.Printf("added %d vectors starting at id %d\n", ar.Count, ar.FirstID)

	postJSON(baseURL+"/search", map[string]any{
		"queries": [][]float32{newVecs[2]}, "w": 64, "k": 3,
	}, &sr)
	fmt.Printf("search for just-added vector: top hit id=%d (want %d)\n",
		sr.Results[0][0].ID, ar.FirstID+2)

	// A small latency measurement through the full HTTP stack.
	start := time.Now()
	const probes = 50
	for i := 0; i < probes; i++ {
		postJSON(baseURL+"/search", map[string]any{
			"queries": [][]float32{base[i]}, "w": 8, "k": 10,
		}, &sr)
	}
	fmt.Printf("end-to-end HTTP search latency: %.2f ms/query\n",
		float64(time.Since(start).Milliseconds())/probes)
}

func postJSON(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func vectors(rng *rand.Rand, n, d int) [][]float32 {
	const groups = 24
	centers := make([][]float32, groups)
	for i := range centers {
		centers[i] = make([]float32, d)
		for j := range centers[i] {
			centers[i][j] = float32(rng.NormFloat64()) * 2
		}
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(groups)]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())*0.25
		}
		out[i] = v
	}
	return out
}
