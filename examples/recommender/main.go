// Recommender: the candidate-generation use case from the paper's
// introduction (YouTube/DLRM-style). Item embeddings live in an
// inner-product (MIPS) index; a user embedding retrieves the top
// candidate items, which a heavyweight ranking model would then re-rank.
//
// The example builds a catalog of item embeddings with popularity
// structure, serves a burst of user queries in batch mode, and compares
// the software engine's candidate sets against the simulated ANNA
// accelerator serving the same burst.
//
// Run with: go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"anna"
)

const (
	nItems   = 30000
	dim      = 96
	nUsers   = 64
	topCands = 20
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Item embeddings: genres are latent directions; popular items have
	// larger norms, which matters under inner-product retrieval.
	genres := randomDirections(rng, 24, dim)
	items := make([][]float32, nItems)
	for i := range items {
		g := genres[rng.Intn(len(genres))]
		v := make([]float32, dim)
		popularity := 0.5 + rng.Float64()*1.5
		for j := range v {
			v[j] = float32((g[j] + rng.NormFloat64()*0.25) * popularity)
		}
		items[i] = v
	}

	// User embeddings: a mix of two genre interests.
	users := make([][]float32, nUsers)
	for i := range users {
		a, b := genres[rng.Intn(len(genres))], genres[rng.Intn(len(genres))]
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(0.7*a[j] + 0.3*b[j] + rng.NormFloat64()*0.1)
		}
		users[i] = v
	}

	// Build the MIPS index: k*=256 with M=D/2 (the paper's 4:1 setup).
	idx, err := anna.BuildIndex(items, anna.InnerProduct, anna.BuildOptions{
		NClusters: 96, M: dim / 2, Ks: 256,
		TrainIters: 8, MaxTrain: 10000, Seed: 7, HardwareFaithful: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d items, %d-dim embeddings, %d clusters\n",
		idx.Len(), idx.Dim(), idx.NClusters())

	// Serve the user burst on the software engine (cluster-major, the
	// batching discipline ANNA implements in hardware).
	rep, err := idx.SearchBatch(users, anna.SearchOptions{
		W: 12, K: topCands, Mode: anna.ClusterMajor, HardwareFaithful: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software engine: %.0f QPS measured over %d users\n", rep.QPS, nUsers)

	// Candidate-generation quality: fraction of exact top candidates
	// retrieved (recall 10@20).
	var recall float64
	for u, q := range users {
		exact, _ := anna.ExactSearch(items, anna.InnerProduct, q, 10)
		truth := make([]int64, len(exact))
		for i, r := range exact {
			truth[i] = r.ID
		}
		recall += anna.Recall(10, topCands, truth, rep.Results[u])
	}
	fmt.Printf("candidate recall 10@%d: %.2f\n", topCands, recall/nUsers)

	// The same burst on the simulated accelerator.
	cfg := anna.DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := anna.NewAccelerator(idx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := acc.Simulate(users, anna.SimParams{W: 12, K: topCands})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated ANNA: %.0f QPS, %.3f ms batch latency, %.2f KB/user traffic\n",
		sim.QPS, sim.MeanLatencySeconds*1e3, float64(sim.TrafficBytes)/1024/nUsers)

	// Agreement between software and accelerator candidate sets.
	agree := 0
	for u := range users {
		got := map[int64]bool{}
		for _, r := range sim.Results[u] {
			got[r.ID] = true
		}
		hit := 0
		for _, r := range rep.Results[u] {
			if got[r.ID] {
				hit++
			}
		}
		agree += hit
	}
	fmt.Printf("accelerator/software candidate agreement: %.1f%%\n",
		100*float64(agree)/float64(nUsers*topCands))

	// Show one user's recommendations.
	fmt.Print("user 0 candidates: ")
	for _, r := range sim.Results[0][:5] {
		fmt.Printf("item%d(%.2f) ", r.ID, r.Score)
	}
	fmt.Println()
}

// randomDirections returns unit vectors.
func randomDirections(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, d)
		var norm float64
		for j := range v {
			v[j] = rng.NormFloat64()
			norm += v[j] * v[j]
		}
		norm = math.Sqrt(norm)
		for j := range v {
			v[j] /= norm
		}
		out[i] = v
	}
	return out
}
