// Imagesearch: SIFT-style L2 similarity search — the paper's image
// retrieval use case. Builds a SIFT-like descriptor database, sweeps the
// W (clusters inspected) knob, and prints the recall/throughput trade-off
// curve for both the software engine and the simulated ANNA accelerator,
// a miniature of the paper's Figure 8.
//
// Run with: go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"

	"anna"
	"anna/internal/dataset"
)

func main() {
	// SIFT-like descriptors: D=128, non-negative, L2 metric.
	const n, nq = 40000, 48
	ds := dataset.Generate(dataset.SIFTLike(n, nq, 9))
	base := rows(ds.Base.Rows, ds.Base.Row)
	queries := rows(ds.Queries.Rows, ds.Queries.Row)

	// The paper's 4:1 compression with k*=16: M=D, 4-bit codes.
	idx, err := anna.BuildIndex(base, anna.L2, anna.BuildOptions{
		NClusters: 128, M: 128, Ks: 16,
		TrainIters: 8, MaxTrain: 12000, Seed: 3, HardwareFaithful: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("database: %d SIFT-like descriptors, %d B/code (%.0f:1)\n",
		st.Vectors, st.CodeBytesPerVector, st.CompressionRatio)

	// Exact ground truth for recall 10@100.
	truth := make([][]int64, nq)
	for i, q := range queries {
		ex, err := anna.ExactSearch(base, anna.L2, q, 10)
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]int64, len(ex))
		for j, r := range ex {
			ids[j] = r.ID
		}
		truth[i] = ids
	}

	cfg := anna.DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := anna.NewAccelerator(idx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n   W   recall10@100   engine QPS (measured)   ANNA QPS (simulated)")
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		rep, err := idx.SearchBatch(queries, anna.SearchOptions{
			W: w, K: 100, Mode: anna.ClusterMajor, HardwareFaithful: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var rec float64
		for i := range queries {
			rec += anna.Recall(10, 100, truth[i], rep.Results[i])
		}
		rec /= nq

		sim, err := acc.Simulate(queries, anna.SimParams{W: w, K: 100, TimingOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d      %.3f        %10.0f            %12.0f\n",
			w, rec, rep.QPS, sim.QPS)
	}
	fmt.Println("\nhigher W inspects more clusters: recall rises, throughput falls —")
	fmt.Println("the trade-off every Figure 8 curve in the paper sweeps.")
}

func rows(n int, row func(int) []float32) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = row(i)
	}
	return out
}
