// Quickstart: build an IVF-PQ index over synthetic vectors, search it,
// check the answers against exact search, and run the same query batch
// through the simulated ANNA accelerator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"anna"
)

func main() {
	const (
		n, d    = 20000, 64
		queries = 8
	)

	// Synthetic clustered data: 32 Gaussian groups.
	rng := rand.New(rand.NewSource(1))
	base := gaussians(rng, n, d)
	qs := gaussians(rng, queries, d)

	// 1. Build the two-level PQ index: 64 coarse clusters, residuals
	// encoded with M=16 sub-spaces of k*=16 codewords (4-bit codes).
	idx, err := anna.BuildIndex(base, anna.L2, anna.BuildOptions{
		NClusters: 64, M: 16, Ks: 16,
		TrainIters: 8, Seed: 42, HardwareFaithful: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("index: %d vectors -> %d bytes/vector (%.0f:1 compression)\n",
		st.Vectors, st.CodeBytesPerVector, st.CompressionRatio)

	// 2. Search: probe the 8 nearest clusters, return top-5.
	for qi, q := range qs[:2] {
		approx := idx.Search(q, 8, 5)
		exact, err := anna.ExactSearch(base, anna.L2, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: approx top-1 = %d (%.2f), exact top-1 = %d (%.2f)\n",
			qi, approx[0].ID, approx[0].Score, exact[0].ID, exact[0].Score)
	}

	// 3. Measure recall 5@50 across the batch.
	var recall float64
	for _, q := range qs {
		exact, _ := anna.ExactSearch(base, anna.L2, q, 5)
		truth := make([]int64, len(exact))
		for i, r := range exact {
			truth[i] = r.ID
		}
		recall += anna.Recall(5, 50, truth, idx.Search(q, 8, 50))
	}
	fmt.Printf("mean recall 5@50 at W=8: %.2f\n", recall/float64(len(qs)))

	// 4. Run the same batch on the simulated ANNA accelerator.
	cfg := anna.DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := anna.NewAccelerator(idx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := acc.Simulate(qs, anna.SimParams{W: 8, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated ANNA: %d cycles, %.0f QPS, %.1f KB memory traffic, %.3f mJ\n",
		rep.Cycles, rep.QPS, float64(rep.TrafficBytes)/1024, rep.ChipEnergyJ*1e3)
	fmt.Printf("accelerator top-1 for query 0: %d (matches software: %v)\n",
		rep.Results[0][0].ID, rep.Results[0][0].ID == idx.Search(qs[0], 8, 5)[0].ID)
}

func gaussians(rng *rand.Rand, n, d int) [][]float32 {
	const groups = 32
	centers := make([][]float32, groups)
	for i := range centers {
		centers[i] = make([]float32, d)
		for j := range centers[i] {
			centers[i][j] = float32(rng.NormFloat64()) * 2
		}
	}
	out := make([][]float32, n)
	for i := range out {
		ctr := centers[rng.Intn(groups)]
		v := make([]float32, d)
		for j := range v {
			v[j] = ctr[j] + float32(rng.NormFloat64())*0.3
		}
		out[i] = v
	}
	return out
}
