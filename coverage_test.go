package anna

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anna/internal/dataset"
	"anna/internal/vecmath"
)

func TestRenderTimelinePublicAPI(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	cfg.Trace = true
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Simulate(queries, SimParams{W: 4, K: 5, TimingOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(rep.Timeline, 60)
	for _, unit := range []string{"cpm", "dram", "scm00"} {
		if !strings.Contains(out, unit) {
			t.Errorf("gantt missing %s:\n%s", unit, out)
		}
	}
	if RenderTimeline(nil, 10) == "" {
		t.Error("empty timeline render")
	}
	// Energy by module present and sums to the chip total.
	var sum float64
	for _, j := range rep.EnergyByModule {
		sum += j
	}
	if diff := sum - rep.ChipEnergyJ; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("module energies sum %v != chip %v", sum, rep.ChipEnergyJ)
	}
	// Per-phase cycles exposed.
	if rep.PhaseCycles["scan"] <= 0 || rep.PhaseCycles["filter"] <= 0 {
		t.Errorf("phase cycles: %v", rep.PhaseCycles)
	}
}

func TestMetricAccessorsIP(t *testing.T) {
	idx, _, _ := buildTestIndex(t, InnerProduct, 16)
	if idx.Metric() != InnerProduct {
		t.Error("IP metric lost")
	}
	if got := InnerProduct.internal(); got.String() != "ip" {
		t.Errorf("internal metric %v", got)
	}
}

func TestExactSearchErrors(t *testing.T) {
	good := clusteredVectors(50, 4, 2, 1)
	if _, err := ExactSearch(nil, L2, []float32{1}, 1); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := ExactSearch(good, L2, []float32{1, 2}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	res, err := ExactSearch(good, InnerProduct, good[0], 3)
	if err != nil || len(res) != 3 {
		t.Errorf("IP exact: %v %d", err, len(res))
	}
}

func TestRunExperimentAcrossIDsQuick(t *testing.T) {
	// Exercise the cheap experiment routes end-to-end through one shared
	// runner (timeline/ablation/traffic run simulations on cached
	// indexes; fig8/fig9/fig10 are covered by the harness tests).
	var buf bytes.Buffer
	r := NewExperimentRunner(ScaleQuick, &buf)
	for _, id := range []string{"table1", "related", "exact", "timeline", "traffic"} {
		if err := r.Run(id, []string{"SIFT1M"}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table I", "related-work", "timeline", "traffic"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := r.Run("graph", nil); err != nil {
		t.Fatalf("graph default workload: %v", err)
	}
}

func TestScaleSelector(t *testing.T) {
	var buf bytes.Buffer
	// ScaleFull resolves without running anything heavy (table1 is cheap).
	if err := RunExperiment("table1", ScaleFull, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "17.51") {
		t.Error("full-scale table1 output")
	}
}

func TestStreamBuildFromFile(t *testing.T) {
	base := clusteredVectors(600, 8, 8, 71)
	m := vecmath.NewMatrix(len(base), 8)
	for i, v := range base {
		m.SetRow(i, v)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "base.fvecs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteFvecs(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	idx, err := BuildIndexFromFvecsFile(path, L2, StreamBuildOptions{
		BuildOptions: BuildOptions{NClusters: 8, M: 4, Ks: 16, TrainIters: 4},
		SampleSize:   300, ChunkSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 600 {
		t.Fatalf("len %d", idx.Len())
	}
}

func TestServerAddErrors(t *testing.T) {
	idx, _, _ := buildTestIndex(t, L2, 16)
	ts := httptest.NewServer(NewServer(idx).Handler())
	defer ts.Close()

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/add", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed add: %d", resp.StatusCode)
	}
	// Wrong dimension.
	resp = postJSON(t, ts.URL+"/add", addRequest{Vectors: [][]float32{{1, 2}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-dim add: %d", resp.StatusCode)
	}
	// Wrong method.
	get, err := http.Get(ts.URL + "/add")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /add: %d", get.StatusCode)
	}
	// /stats with wrong method.
	post := postJSON(t, ts.URL+"/stats", map[string]any{})
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats: %d", post.StatusCode)
	}
}
