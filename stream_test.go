package anna

import (
	"bytes"
	"testing"
	"time"

	"anna/internal/dataset"
	"anna/internal/vecmath"
)

// fvecsBytes serialises vectors as an fvecs stream.
func fvecsBytes(t *testing.T, vectors [][]float32) []byte {
	t.Helper()
	m := vecmath.NewMatrix(len(vectors), len(vectors[0]))
	for i, v := range vectors {
		m.SetRow(i, v)
	}
	var buf bytes.Buffer
	if err := dataset.WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamingBuildMatchesInMemoryBuild(t *testing.T) {
	base := clusteredVectors(5000, 16, 16, 51)
	opt := StreamBuildOptions{
		BuildOptions: BuildOptions{
			NClusters: 16, M: 4, Ks: 16, TrainIters: 5, Seed: 9,
		},
		SampleSize: 2000, // training prefix
		ChunkSize:  700,  // force several streaming flushes
	}
	streamed, err := BuildIndexFromFvecs(bytes.NewReader(fvecsBytes(t, base)), L2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != len(base) {
		t.Fatalf("streamed %d vectors, want %d", streamed.Len(), len(base))
	}

	// An in-memory index trained on the same prefix and extended with
	// Add must be identical in behaviour.
	ref, err := BuildIndex(base[:2000], L2, opt.BuildOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Add(base[2000:]); err != nil {
		t.Fatal(err)
	}
	q := clusteredVectors(5, 16, 16, 52)
	for _, qu := range q {
		a := streamed.Search(qu, 8, 10)
		b := ref.Search(qu, 8, 10)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("streamed/in-memory mismatch at rank %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}

	// Stream-built index retrieves late (streamed-phase) vectors.
	res := streamed.Search(base[4800], streamed.NClusters(), 5)
	found := false
	for _, r := range res {
		if r.ID == 4800 {
			found = true
		}
	}
	if !found {
		t.Errorf("late streamed vector not retrievable: %+v", res)
	}
}

func TestStreamingBuildWholeStreamAsSample(t *testing.T) {
	base := clusteredVectors(800, 8, 8, 53)
	idx, err := BuildIndexFromFvecs(bytes.NewReader(fvecsBytes(t, base)), L2, StreamBuildOptions{
		BuildOptions: BuildOptions{NClusters: 8, M: 4, Ks: 16, TrainIters: 4},
		SampleSize:   10000, // larger than the stream
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 800 {
		t.Fatalf("len %d", idx.Len())
	}
}

func TestStreamingBuildErrors(t *testing.T) {
	if _, err := BuildIndexFromFvecs(bytes.NewReader(nil), L2, StreamBuildOptions{
		BuildOptions: BuildOptions{NClusters: 2, M: 2, Ks: 4},
	}); err == nil {
		t.Error("empty stream accepted")
	}
	// Corrupt stream mid-way.
	base := clusteredVectors(300, 8, 4, 54)
	raw := fvecsBytes(t, base)
	corrupt := append([]byte{}, raw[:len(raw)-5]...)
	if _, err := BuildIndexFromFvecs(bytes.NewReader(corrupt), L2, StreamBuildOptions{
		BuildOptions: BuildOptions{NClusters: 4, M: 4, Ks: 16, TrainIters: 3},
		SampleSize:   100,
	}); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := BuildIndexFromFvecsFile("/no/such/file", L2, StreamBuildOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTuneW(t *testing.T) {
	idx, base, queries := buildTestIndex(t, L2, 16)
	w, achieved, ok, err := idx.TuneW(base, queries, 10, 100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("target unreachable: best %.3f at W=%d", achieved, w)
	}
	if achieved < 0.9 {
		t.Fatalf("achieved %.3f below target at W=%d", achieved, w)
	}
	// Minimality: W-1 misses the target (allowing W=1).
	if w > 1 {
		var below float64
		for i, q := range queries {
			ex, _ := ExactSearch(base, L2, q, 10)
			truth := make([]int64, len(ex))
			for j, r := range ex {
				truth[j] = r.ID
			}
			below += Recall(10, 100, truth[:10], idx.Search(q, w-1, 100))
			_ = i
		}
		if below/float64(len(queries)) >= 0.9 {
			t.Errorf("W=%d not minimal: W-1 also meets target", w)
		}
	}

	// Unreachable target reports ok=false with the max-W recall.
	_, _, ok, err = idx.TuneW(base, queries, 10, 10, 0.99999)
	if err != nil {
		t.Fatal(err)
	}
	_ = ok // may or may not reach on easy data; just must not error

	// Parameter validation.
	if _, _, _, err := idx.TuneW(base, queries, 10, 100, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, _, _, err := idx.TuneW(base, queries, 0, 100, 0.5); err == nil {
		t.Error("rx=0 accepted")
	}
	if _, _, _, err := idx.TuneW(base, queries, 10, 5, 0.5); err == nil {
		t.Error("ry<rx accepted")
	}
}

// Progress fires at training start, after training, and after every
// flushed chunk, with a monotonically increasing ingested count ending
// at the stream length.
func TestStreamingBuildProgress(t *testing.T) {
	base := clusteredVectors(3000, 16, 8, 61)
	var calls []int
	opt := StreamBuildOptions{
		BuildOptions: BuildOptions{NClusters: 8, M: 4, Ks: 16, TrainIters: 4, Seed: 3},
		SampleSize:   1000,
		ChunkSize:    600,
		Progress:     func(n int) { calls = append(calls, n) },
	}
	idx, err := BuildIndexFromFvecs(bytes.NewReader(fvecsBytes(t, base)), L2, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Training start, 1000 trained, then 2000 streamed in chunks of 600:
	// 0, 1000, 1600, 2200, 2800, 3000.
	want := []int{0, 1000, 1600, 2200, 2800, 3000}
	if len(calls) != len(want) {
		t.Fatalf("progress calls %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("progress calls %v, want %v", calls, want)
		}
	}
	if idx.Len() != 3000 {
		t.Fatalf("indexed %d", idx.Len())
	}
}

// ProgressEvery heartbeats report liveness (as Progress(0)) only while
// the model trains: every zero call precedes the first nonzero ingested
// count, and the heartbeat goroutine is stopped before the post-training
// call, so recording into a plain slice here is race-free.
func TestStreamingBuildProgressHeartbeat(t *testing.T) {
	base := clusteredVectors(4000, 16, 16, 62)
	var calls []int
	opt := StreamBuildOptions{
		BuildOptions:  BuildOptions{NClusters: 16, M: 4, Ks: 16, TrainIters: 6, Seed: 3},
		SampleSize:    2000,
		ChunkSize:     1000,
		ProgressEvery: time.Millisecond,
		Progress:      func(n int) { calls = append(calls, n) },
	}
	idx, err := BuildIndexFromFvecs(bytes.NewReader(fvecsBytes(t, base)), L2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 || calls[0] != 0 {
		t.Fatalf("first progress call not the training-start 0: %v", calls)
	}
	seenNonzero := false
	for _, n := range calls {
		if n == 0 && seenNonzero {
			t.Fatalf("heartbeat fired after training finished: %v", calls)
		}
		if n != 0 {
			seenNonzero = true
		}
	}
	if last := calls[len(calls)-1]; last != 4000 {
		t.Fatalf("final progress %d, want 4000 (calls %v)", last, calls)
	}
	if idx.Len() != 4000 {
		t.Fatalf("indexed %d", idx.Len())
	}
}
