package main

// The adaptive recall-vs-QPS sweep of the engine suite: fixed-W
// operating points against adaptive ones (early termination, precision
// escalation) on the same single-core engine over a seeded synthetic
// corpus with exact ground truth, so BENCH_engine.json records the
// iso-recall speedup of per-query effort (docs/ARCHITECTURE.md §4j)
// next to the kernel benchmarks.

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"anna/internal/adaptive"
	"anna/internal/dataset"
	"anna/internal/engine"
	"anna/internal/exact"
	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/recall"
)

// SweepPoint is one measured operating point of the sweep.
type SweepPoint struct {
	Name            string  `json:"name"`
	W               int     `json:"w"`
	StopPatience    int     `json:"stop_patience,omitempty"`
	EscalateFactor  int     `json:"escalate_factor,omitempty"`
	Margin          float64 `json:"margin,omitempty"`
	RecallAt10      float64 `json:"recall_at_10"`
	QPS             float64 `json:"qps"`
	ClustersPerQry  float64 `json:"clusters_per_query"`
	EscalatedPerQry float64 `json:"escalated_per_query,omitempty"`
}

// AdaptiveSweep is the recall-vs-QPS comparison recorded into
// BENCH_engine.json.
type AdaptiveSweep struct {
	Description string       `json:"description"`
	Dataset     string       `json:"dataset"`
	Fixed       []SweepPoint `json:"fixed"`
	Adaptive    []SweepPoint `json:"adaptive"`
	// IsoRecallSpeedup is the headline: over the fixed Pareto frontier,
	// the best ratio of (fastest adaptive point with recall@10 no more
	// than 0.005 below the fixed point's) QPS to the fixed point's QPS.
	// MatchedRecallDelta is adaptive minus fixed recall for that pair.
	IsoRecallSpeedup   float64 `json:"iso_recall_speedup"`
	MatchedAdaptive    string  `json:"matched_adaptive,omitempty"`
	MatchedFixed       string  `json:"matched_fixed,omitempty"`
	MatchedRecallDelta float64 `json:"matched_recall_delta,omitempty"`
}

// runSweep builds the sweep corpus and measures every operating point.
func runSweep(n, q int) *AdaptiveSweep {
	const (
		d         = 64
		nClusters = 128
		k         = 10
	)
	fmt.Fprintf(os.Stderr, "benchjson: adaptive sweep corpus n=%d q=%d d=%d clusters=%d...\n", n, q, d, nClusters)
	spec := dataset.SIFTLike(n, q, 1)
	spec.D = d
	// Few wide latent groups split across many coarse cells: a query's
	// neighbours spread over its group's cells, so recall climbs with W
	// rather than saturating at W=2, and per-query difficulty varies
	// (boundary queries need many cells) — the regime where per-query
	// effort matters.
	spec.Groups = 16
	spec.Std = 0.5
	ds := dataset.Generate(spec)
	// A third of the queries are pushed off the data manifold (extra
	// isotropic noise), the TTI-style cross-modal tail: their neighbours
	// scatter across many coarse cells, so a fixed W must be provisioned
	// for this tail while adaptive effort pays it only on those queries.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < ds.Queries.Rows; i += 3 {
		row := ds.Queries.Row(i)
		for j := range row {
			row[j] += 1.2 * float32(rng.NormFloat64())
		}
	}
	idx := ivf.Build(ds.Base, pq.L2, ivf.Config{
		NClusters: nClusters, M: 8, Ks: 256, CoarseIters: 8, PQIters: 8, Seed: 1,
		Rerank: true,
	})
	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, k)
	e := engine.New(idx)

	measure := func(name string, w int, ap adaptive.Params) SweepPoint {
		opt := engine.Options{Mode: engine.QueryAtATime, W: w, K: k, Workers: 1, Adaptive: ap}
		// One warmup run, then best-of-N over at least ~1s of measurement:
		// individual runs are tens of milliseconds, so a fixed small rep
		// count is at the mercy of scheduling and frequency-scaling noise.
		e.Run(ds.Queries, opt)
		var best *engine.Report
		var total time.Duration
		for r := 0; r < 50 && (r < 5 || total < time.Second); r++ {
			rep := e.Run(ds.Queries, opt)
			total += rep.Elapsed
			if best == nil || rep.QPS > best.QPS {
				best = rep
			}
		}
		nq := float64(ds.Queries.Rows)
		p := SweepPoint{
			Name:            name,
			W:               w,
			StopPatience:    ap.StopPatience,
			EscalateFactor:  ap.EscalateFactor,
			Margin:          float64(ap.Margin),
			RecallAt10:      recall.Mean(k, k, gt, best.Results),
			QPS:             best.QPS,
			ClustersPerQry:  float64(best.ClustersScanned) / nq,
			EscalatedPerQry: float64(best.Escalations) / nq,
		}
		fmt.Fprintf(os.Stderr, "benchjson:   %-22s recall@10 %.4f  %8.0f qps  %.1f clusters/q  %.0f escalated/q\n",
			name, p.RecallAt10, p.QPS, p.ClustersPerQry, p.EscalatedPerQry)
		return p
	}

	sw := &AdaptiveSweep{
		Description: "Single-core (Workers=1) recall@10 vs QPS: fixed-W scans against adaptive " +
			"per-query effort (early termination at full W, optional SQ8 precision escalation). " +
			"iso_recall_speedup: for each point on the fixed Pareto frontier, the fastest adaptive " +
			"point at matched recall@10 (within 0.005) replaces it; the best such ratio is recorded.",
		Dataset: fmt.Sprintf("synthetic sift-like n=%d q=%d d=%d clusters=%d seed=1", n, q, d, nClusters),
	}
	for _, w := range []int{2, 4, 8, 16, 32, 64, 128} {
		sw.Fixed = append(sw.Fixed, measure(fmt.Sprintf("fixed_w%d", w), w, adaptive.Params{}))
	}
	// Fixed-effort rerank baselines: every query scans all W clusters and
	// re-scores the full retained candidate set (Margin 1 = whole band),
	// through the same escalation code path the adaptive points use.
	// These are the high-recall fixed operating points.
	for _, w := range []int{4, 8, 16, 32, 64, 128} {
		sw.Fixed = append(sw.Fixed, measure(fmt.Sprintf("fixed_w%d_rerank", w), w,
			adaptive.Params{EscalateFactor: 4, Margin: 1}))
	}
	for _, pt := range []struct {
		name string
		ap   adaptive.Params
	}{
		{"adaptive_p1", adaptive.Params{StopPatience: 1, MinClusters: 2}},
		{"adaptive_p2", adaptive.Params{StopPatience: 2, MinClusters: 4}},
		{"adaptive_p4", adaptive.Params{StopPatience: 4, MinClusters: 4}},
		{"adaptive_p8", adaptive.Params{StopPatience: 8, MinClusters: 4}},
		{"adaptive_p1_esc", adaptive.Params{StopPatience: 1, MinClusters: 2, EscalateFactor: 4, Margin: 1}},
		{"adaptive_p2_esc", adaptive.Params{StopPatience: 2, MinClusters: 4, EscalateFactor: 4, Margin: 1}},
		{"adaptive_p4_esc", adaptive.Params{StopPatience: 4, MinClusters: 4, EscalateFactor: 4, Margin: 1}},
		{"adaptive_p8_esc", adaptive.Params{StopPatience: 8, MinClusters: 4, EscalateFactor: 4, Margin: 1}},
	} {
		sw.Adaptive = append(sw.Adaptive, measure(pt.name, nClusters, pt.ap))
	}

	// Iso-recall matching, anchored on the fixed Pareto frontier: for
	// each non-dominated fixed operating point (the config a deployment
	// would actually provision for its recall target), the fastest
	// adaptive point delivering at least that recall minus 0.005 is its
	// adaptive replacement. Restricting baselines to the frontier keeps
	// dominated fixed points (e.g. W=128 where W=32 already saturates)
	// from inflating the headline.
	const tol = 0.005
	for i := range sw.Fixed {
		f := &sw.Fixed[i]
		dominated := false
		for j := range sw.Fixed {
			if g := &sw.Fixed[j]; g.RecallAt10 >= f.RecallAt10 && g.QPS > f.QPS {
				dominated = true
				break
			}
		}
		if dominated || f.QPS <= 0 {
			continue
		}
		var repl *SweepPoint
		for j := range sw.Adaptive {
			if a := &sw.Adaptive[j]; a.RecallAt10 >= f.RecallAt10-tol &&
				(repl == nil || a.QPS > repl.QPS) {
				repl = a
			}
		}
		if repl == nil {
			continue
		}
		if sp := repl.QPS / f.QPS; sp > sw.IsoRecallSpeedup {
			sw.IsoRecallSpeedup = sp
			sw.MatchedAdaptive = repl.Name
			sw.MatchedFixed = f.Name
			sw.MatchedRecallDelta = repl.RecallAt10 - f.RecallAt10
		}
	}
	if sw.IsoRecallSpeedup > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: iso-recall speedup %.2fx (%s vs %s, recall delta %+.4f)\n",
			sw.IsoRecallSpeedup, sw.MatchedAdaptive, sw.MatchedFixed, sw.MatchedRecallDelta)
	}
	return sw
}
