// Command benchjson runs a benchmark suite and records it as JSON,
// comparing against the recorded seed baseline for that suite. It backs
// `make bench`, which regenerates both documents at the repo root:
//
//	go run ./cmd/benchjson -suite engine -out BENCH_engine.json
//	go run ./cmd/benchjson -suite build  -out BENCH_build.json
//	go run ./cmd/benchjson -suite serve  -out BENCH_serve.json
//
// The "engine" suite covers the serving path (fused scan kernel, worker
// pool); the "build" suite covers the train/encode/ingest pipeline
// (blocked batch encoder, parallel deterministic k-means). Seed
// baselines were measured on the commit preceding each optimisation
// (same machine class as CI): they are the "before" column, the fresh
// run is "after".
//
// The "serve" suite is different in kind: it delegates to the annaload
// load generator, which self-hosts a synthetic index and measures whole
// latency-vs-QPS curves for the baseline (per-request) and full
// (batched + cached) serving stacks in the same process, writing the
// curves and the saturation speedup to the output. -benchtime maps to
// annaload's per-level -duration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"anna/internal/simd"
)

// Metrics is one benchmark's figures. QPS is derived from ns/op and the
// op's query count when the benchmark doesn't report a qps metric itself.
type Metrics struct {
	NsPerOp     float64  `json:"ns_op"`
	BytesPerOp  *float64 `json:"b_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_op,omitempty"`
	QPS         *float64 `json:"qps,omitempty"`
	NsPerQuery  *float64 `json:"ns_query,omitempty"`
}

// Entry pairs the recorded seed baseline with the fresh measurement.
type Entry struct {
	Package string   `json:"package"`
	Before  *Metrics `json:"before,omitempty"` // seed (pre fused kernel); nil for new benchmarks
	After   *Metrics `json:"after"`
	Speedup *float64 `json:"speedup,omitempty"` // before.ns_op / after.ns_op
}

// SIMDInfo records the kernel dispatch active for the run, read from
// internal/simd in this process. The `go test` child inherits the same
// environment (including ANNA_NOSIMD) and runs on the same CPU, so its
// dispatch matches; recording it keeps scalar and SIMD measurements from
// being compared without noticing.
type SIMDInfo struct {
	Dispatch string `json:"dispatch"`           // "avx2" or "scalar"
	Features string `json:"features,omitempty"` // detected CPU features
	Reason   string `json:"reason,omitempty"`   // why dispatch is scalar, when it is
	GoArch   string `json:"goarch"`
}

// Output is the BENCH_*.json document.
type Output struct {
	Generated   string            `json:"generated"`
	Command     string            `json:"command"`
	CPU         string            `json:"cpu,omitempty"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	SIMD        *SIMDInfo         `json:"simd,omitempty"`
	Description string            `json:"description"`
	Benchmarks  map[string]*Entry `json:"benchmarks"`
	// AdaptiveSweep (engine suite only) records the recall-vs-QPS
	// comparison of fixed-W against adaptive per-query effort; see
	// sweep.go and docs/ARCHITECTURE.md §4j.
	AdaptiveSweep *AdaptiveSweep `json:"adaptive_sweep,omitempty"`
}

// queriesPerOp maps benchmarks whose op spans a whole query batch to the
// batch size, so a comparable QPS can be derived for the seed baseline.
var queriesPerOp = map[string]float64{
	"BenchmarkQueryMajor":   12,
	"BenchmarkClusterMajor": 12,
	"BenchmarkSearchW8":     1,
}

func f(v float64) *float64 { return &v }

// A suite bundles the benchmark selection with its recorded baseline.
type suite struct {
	out         string // default output path
	bench       string // default benchmark regex
	pkgs        []string
	description string
	baselines   map[string]*Metrics
}

var suites = map[string]suite{
	// Serving path: baselines are the seed-commit measurements
	// (goroutine-per-query engine, Unpack+ADC+Push reference scan),
	// recorded before the fused kernel landed.
	"engine": {
		out:   "BENCH_engine.json",
		bench: "Search|ADC|Major",
		pkgs:  []string{"./internal/ivf/", "./internal/pq/", "./internal/engine/", "./internal/simd/"},
		description: "CPU-engine scan benchmarks. 'before' is the recorded pre-optimisation baseline: " +
			"the seed commit (per-vector Unpack+ADC+Push scan, goroutine-per-query engine) for the " +
			"SearchW8/ADC_M64/*Major entries, and the pure-Go scalar kernels (pre-SIMD tree, same " +
			"machine class) for the ScanADC/ADCSums entries; 'after' is this tree (fused packed-code " +
			"scan through the AVX2 assembly kernels when the CPU supports them).",
		baselines: map[string]*Metrics{
			"anna/internal/ivf.BenchmarkSearchW8":        {NsPerOp: 270550, BytesPerOp: f(6672), AllocsPerOp: f(14)},
			"anna/internal/pq.BenchmarkADC_M64":          {NsPerOp: 50.79, BytesPerOp: f(0), AllocsPerOp: f(0)},
			"anna/internal/engine.BenchmarkQueryMajor":   {NsPerOp: 991644, BytesPerOp: f(58872), AllocsPerOp: f(199)},
			"anna/internal/engine.BenchmarkClusterMajor": {NsPerOp: 1100052, BytesPerOp: f(72192), AllocsPerOp: f(346)},
			// Pre-SIMD pure-Go scalar measurements (ANNA_NOSIMD-equivalent
			// tree, Intel Xeon @ 2.10GHz — the CI machine class).
			"anna/internal/pq.BenchmarkScanADC4":   {NsPerOp: 45796, BytesPerOp: f(0), AllocsPerOp: f(0)},
			"anna/internal/pq.BenchmarkScanADC8":   {NsPerOp: 43599, BytesPerOp: f(0), AllocsPerOp: f(0)},
			"anna/internal/simd.BenchmarkADCSums4": {NsPerOp: 196059},
			"anna/internal/simd.BenchmarkADCSums8": {NsPerOp: 26312},
		},
	},
	// Build/ingest pipeline: baselines are the fully serial seed path
	// (per-vector subtract-square Encode, serial Lloyd iterations),
	// measured on the commit preceding the blocked batch encoder.
	"build": {
		out:   "BENCH_build.json",
		bench: "Build|BenchmarkAdd$|Encode",
		pkgs:  []string{"./internal/ivf/", "./internal/pq/"},
		description: "Build/ingest pipeline benchmarks. 'before' is the recorded serial seed baseline " +
			"(per-vector subtract-square encode, serial k-means passes); 'after' is this tree " +
			"(blocked norms-identity batch encoder, chunk-deterministic parallel k-means and list build).",
		baselines: map[string]*Metrics{
			"anna/internal/ivf.BenchmarkBuild":      {NsPerOp: 6815216832},
			"anna/internal/ivf.BenchmarkAdd":        {NsPerOp: 22530035},
			"anna/internal/pq.BenchmarkEncodeBatch": {NsPerOp: 30529673},
		},
	},
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	suiteName := flag.String("suite", "engine", `benchmark suite: "engine" (serving path), "build" (train/encode/ingest), or "serve" (HTTP load curves via annaload)`)
	out := flag.String("out", "", "output JSON path (default: the suite's BENCH_*.json)")
	bench := flag.String("bench", "", "benchmark regex (default: the suite's selection)")
	benchtime := flag.String("benchtime", "", "passed to -benchtime when non-empty")
	sweepN := flag.Int("sweep-n", 20000, "adaptive sweep corpus size for the engine suite (0 disables the sweep)")
	sweepQ := flag.Int("sweep-q", 200, "adaptive sweep query count for the engine suite")
	flag.Parse()

	if *suiteName == "serve" {
		runServe(*out, *benchtime)
		return
	}

	s, ok := suites[*suiteName]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: unknown suite %q\n", *suiteName)
		os.Exit(1)
	}
	if *out == "" {
		*out = s.out
	}
	if *bench == "" {
		*bench = s.bench
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, s.pkgs...)

	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n%s", err, raw)
		os.Exit(1)
	}

	doc := &Output{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Command:    "go " + strings.Join(args, " "),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SIMD: &SIMDInfo{
			Dispatch: simd.Dispatch(),
			Features: simd.Features(),
			Reason:   simd.Reason(),
			GoArch:   runtime.GOARCH,
		},
		Description: s.description,
		Benchmarks:  map[string]*Entry{},
	}

	pkg := ""
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if strings.HasPrefix(line, "cpu:") && doc.CPU == "" {
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, metrics := m[1], parseMetrics(m[2])
		if metrics == nil {
			continue
		}
		key := pkg + "." + name
		if metrics.QPS == nil {
			if nq, ok := queriesPerOp[name]; ok && metrics.NsPerOp > 0 {
				metrics.QPS = f(nq * 1e9 / metrics.NsPerOp)
			}
		}
		e := &Entry{Package: pkg, After: metrics}
		if before, ok := s.baselines[key]; ok {
			e.Before = before
			if before.QPS == nil {
				if nq, ok := queriesPerOp[name]; ok && before.NsPerOp > 0 {
					before.QPS = f(nq * 1e9 / before.NsPerOp)
				}
			}
			if metrics.NsPerOp > 0 {
				e.Speedup = f(before.NsPerOp / metrics.NsPerOp)
			}
		}
		doc.Benchmarks[key] = e
	}

	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks parsed")
		os.Exit(1)
	}
	if *suiteName == "engine" && *sweepN > 0 {
		doc.AdaptiveSweep = runSweep(*sweepN, *sweepQ)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(doc.Benchmarks))
}

// runServe delegates the serve suite to the annaload load generator,
// which measures latency-vs-QPS curves and writes the JSON itself.
func runServe(out, benchtime string) {
	if out == "" {
		out = "BENCH_serve.json"
	}
	args := []string{"run", "./cmd/annaload", "-out", out, "-router", "3", "-adaptive"}
	if benchtime != "" {
		args = append(args, "-duration", benchtime)
	}
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: annaload failed: %v\n", err)
		os.Exit(1)
	}
}

// parseMetrics decodes the "value unit value unit ..." tail of a
// benchmark line.
func parseMetrics(tail string) *Metrics {
	fields := strings.Fields(tail)
	if len(fields)%2 != 0 || len(fields) == 0 {
		return nil
	}
	out := &Metrics{}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		switch fields[i+1] {
		case "ns/op":
			out.NsPerOp = v
		case "B/op":
			out.BytesPerOp = f(v)
		case "allocs/op":
			out.AllocsPerOp = f(v)
		case "qps":
			out.QPS = f(v)
		case "ns/query":
			out.NsPerQuery = f(v)
		}
	}
	return out
}
