// Command annaserve exposes an index built by annatrain as an HTTP JSON
// similarity-search service.
//
// Usage:
//
//	annaserve -index sift.anna -addr :8080
//
// Endpoints:
//
//	POST /search  {"queries": [[...]], "w": 32, "k": 10}
//	POST /add     {"vectors": [[...]]}
//	GET  /stats
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"anna"
)

func main() {
	var (
		indexPath = flag.String("index", "index.anna", "index file from annatrain")
		addr      = flag.String("addr", ":8080", "listen address")
		defaultW  = flag.Int("w", 32, "default clusters inspected per query")
		defaultK  = flag.Int("k", 10, "default results per query")
		maxBatch  = flag.Int("maxbatch", 1024, "maximum queries per request")
		withAccel = flag.Bool("accel", false, `also serve the simulated ANNA backend (requests with "backend":"anna")`)
	)
	flag.Parse()

	idx, err := anna.LoadIndexFile(*indexPath)
	if err != nil {
		log.Fatalf("annaserve: loading index: %v", err)
	}
	srv := anna.NewServer(idx)
	srv.DefaultW = *defaultW
	srv.DefaultK = *defaultK
	srv.MaxBatch = *maxBatch
	if *withAccel {
		cfg := anna.DefaultAcceleratorConfig()
		if *defaultK > cfg.TopK {
			cfg.TopK = *defaultK
		}
		acc, err := anna.NewAccelerator(idx, cfg)
		if err != nil {
			log.Fatalf("annaserve: configuring accelerator: %v", err)
		}
		srv.Accelerator = acc
	}

	fmt.Printf("annaserve: %d vectors (dim %d, %v) on %s\n",
		idx.Len(), idx.Dim(), idx.Metric(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
