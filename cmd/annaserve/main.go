// Command annaserve exposes an index built by annatrain as an HTTP JSON
// similarity-search service.
//
// Usage:
//
//	annaserve -index sift.anna -addr :8080
//	annaserve -index sift.anna -data /var/lib/anna -wal-sync always
//
// Endpoints:
//
//	POST /search  {"queries": [[...]], "w": 32, "k": 10}
//	POST /add     {"vectors": [[...]]}
//	POST /admin/snapshot  checkpoint the index, trim the WAL (needs -data)
//	GET  /stats
//	GET  /healthz
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/pprof/*  runtime profiles (disable with -pprof=false)
//
// With -data, the served index is durable: /add batches are written to a
// checksummed WAL before acknowledgment, snapshots are atomic, and on
// restart the snapshot in the data directory is recovered with the WAL
// replayed on top (-index then only seeds a directory that has no
// snapshot yet). -wal-sync picks the fsync policy — "always" (every
// batch, the default), "none" (OS page cache), or a duration like
// "100ms" (group commit). -snapshot-every N auto-checkpoints after N
// added vectors.
//
// The process sheds load with 429 once -maxinflight searches are
// running, bounds each search by -timeout, and drains in-flight
// requests for up to -grace after SIGINT/SIGTERM before exiting (with a
// final snapshot when -data is set).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anna"
)

// parseSyncPolicy maps the -wal-sync flag to store options: "always",
// "none", or a group-commit interval like "100ms".
func parseSyncPolicy(s string) (anna.StoreOptions, error) {
	switch s {
	case "always":
		return anna.StoreOptions{Sync: anna.SyncAlways}, nil
	case "none":
		return anna.StoreOptions{Sync: anna.SyncNone}, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return anna.StoreOptions{}, fmt.Errorf("-wal-sync must be always, none, or a positive duration (got %q)", s)
		}
		return anna.StoreOptions{Sync: anna.SyncInterval, SyncEvery: d}, nil
	}
}

// openStore recovers the store in dir, seeding it from indexPath when the
// directory holds no snapshot yet.
func openStore(dir, indexPath string, opt anna.StoreOptions) (*anna.Store, error) {
	if anna.StoreExists(dir) {
		st, err := anna.OpenStore(dir, opt)
		if err != nil {
			return nil, err
		}
		if n, torn := st.ReplayedRecords(), st.TornBytes(); n > 0 || torn > 0 {
			log.Printf("annaserve: recovered %s: replayed %d WAL record(s), discarded %d torn byte(s)",
				dir, n, torn)
		}
		return st, nil
	}
	idx, err := anna.LoadIndexFile(indexPath)
	if err != nil {
		return nil, fmt.Errorf("seeding %s from %s: %w", dir, indexPath, err)
	}
	log.Printf("annaserve: initialising data directory %s from %s", dir, indexPath)
	return anna.CreateStore(dir, idx, opt)
}

func main() {
	var (
		indexPath   = flag.String("index", "index.anna", "index file from annatrain")
		addr        = flag.String("addr", ":8080", "listen address")
		defaultW    = flag.Int("w", 32, "default clusters inspected per query")
		defaultK    = flag.Int("k", 10, "default results per query")
		maxBatch    = flag.Int("maxbatch", 1024, "maximum queries per request")
		maxInflight = flag.Int("maxinflight", 256, "maximum concurrent /search requests before 429 (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "per-search deadline propagated into the engine (0 = none)")
		pprofOn     = flag.Bool("pprof", true, "serve /debug/pprof/ profiles")
		grace       = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain window")
		withAccel   = flag.Bool("accel", false, `also serve the simulated ANNA backend (requests with "backend":"anna")`)
		dataDir     = flag.String("data", "", "durable data directory: WAL /add batches, snapshot on shutdown, recover on start (empty = serve -index in memory only)")
		walSync     = flag.String("wal-sync", "always", `WAL fsync policy: "always", "none", or a group-commit interval like "100ms"`)
		snapEvery   = flag.Int("snapshot-every", 0, "auto-snapshot after this many added vectors (0 = only /admin/snapshot and shutdown)")
		workers     = flag.Int("workers", 0, "ingest parallelism for /add and WAL replay (0 = GOMAXPROCS); the index is byte-identical for any value")
	)
	flag.Parse()

	var (
		idx   *anna.Index
		store *anna.Store
		err   error
	)
	if *dataDir != "" {
		opt, perr := parseSyncPolicy(*walSync)
		if perr != nil {
			log.Fatalf("annaserve: %v", perr)
		}
		opt.Workers = *workers
		store, err = openStore(*dataDir, *indexPath, opt)
		if err != nil {
			log.Fatalf("annaserve: opening store: %v", err)
		}
		idx = store.Index()
	} else {
		idx, err = anna.LoadIndexFile(*indexPath)
		if err != nil {
			log.Fatalf("annaserve: loading index: %v", err)
		}
		idx.SetIngestWorkers(*workers)
	}
	srv := anna.NewServer(idx)
	srv.DefaultW = *defaultW
	srv.DefaultK = *defaultK
	srv.MaxBatch = *maxBatch
	srv.MaxInFlight = *maxInflight
	srv.SearchTimeout = *timeout
	srv.DisablePprof = !*pprofOn
	srv.Store = store
	srv.SnapshotEvery = *snapEvery
	if *withAccel {
		cfg := anna.DefaultAcceleratorConfig()
		if *defaultK > cfg.TopK {
			cfg.TopK = *defaultK
		}
		acc, err := anna.NewAccelerator(idx, cfg)
		if err != nil {
			log.Fatalf("annaserve: configuring accelerator: %v", err)
		}
		srv.Accelerator = acc
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	durable := "in-memory"
	if store != nil {
		durable = fmt.Sprintf("durable in %s (wal-sync %s)", *dataDir, *walSync)
	}
	fmt.Printf("annaserve: %d vectors (dim %d, %v) on %s, %s\n",
		idx.Len(), idx.Dim(), idx.Metric(), *addr, durable)

	select {
	case err := <-errc:
		log.Fatalf("annaserve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		log.Printf("annaserve: signal received, draining for up to %v", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("annaserve: drain window expired, closing: %v", err)
			hs.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("annaserve: %v", err)
		}
		if store != nil {
			// Checkpoint so the next start replays an empty WAL. Failure
			// is not fatal: the WAL still holds everything acknowledged.
			if err := store.Snapshot(); err != nil {
				log.Printf("annaserve: shutdown snapshot: %v", err)
			}
			if err := store.Close(); err != nil {
				log.Printf("annaserve: closing store: %v", err)
			}
		}
		log.Printf("annaserve: shut down cleanly")
	}
}
