// Command annaserve exposes an index built by annatrain as an HTTP JSON
// similarity-search service.
//
// Usage:
//
//	annaserve -index sift.anna -addr :8080
//	annaserve -index sift.anna -data /var/lib/anna -wal-sync always
//
// Endpoints:
//
//	POST /search  {"queries": [[...]], "w": 32, "k": 10}
//	POST /add     {"vectors": [[...]]}
//	POST /admin/snapshot  checkpoint the index, trim the WAL (needs -data)
//	GET  /stats
//	GET  /healthz        process liveness (200 even while recovering)
//	GET  /readyz         503 until WAL recovery completes, then 200
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/pprof/*  runtime profiles (disable with -pprof=false)
//
// With -data, the served index is durable: /add batches are written to a
// checksummed WAL before acknowledgment, snapshots are atomic, and on
// restart the snapshot in the data directory is recovered with the WAL
// replayed on top (-index then only seeds a directory that has no
// snapshot yet). -wal-sync picks the fsync policy — "always" (every
// batch, the default), "none" (OS page cache), or a duration like
// "100ms" (group commit). -snapshot-every N auto-checkpoints after N
// added vectors.
//
// The process sheds load with 429 once -maxinflight searches are
// running, bounds each search by -timeout, and drains in-flight
// requests for up to -grace after SIGINT/SIGTERM before exiting (with a
// final snapshot when -data is set).
//
// Serving-path performance: concurrent single-query /search requests
// are coalesced for up to -batch-window into shared engine batches
// (bit-exact; -batch-max caps the batch size), repeated queries are
// answered from a quantized-query result cache of -cache entries
// (invalidated by /add), and -tenants assigns per-API-key QoS — weights,
// token-bucket rate limits, and interactive/bulk lanes:
//
//	annaserve -index sift.anna \
//	  -batch-window 1ms -cache 8192 \
//	  -tenants "web=weight:4,lane:interactive;etl=rate:500,burst:1000,lane:bulk"
//
// Observability (docs/ARCHITECTURE.md §4k): logs are structured (-log
// text|json), 1-in-N queries are traced (-trace-sample) into
// /debug/queries, requests slower than -slow are logged, and
// -recall-fvecs starts a shadow recall estimator that re-ranks sampled
// queries against exact search over that corpus and publishes live
// recall@k on /metrics. Requests arriving with an X-Anna-Trace header
// (from annarouter) are always traced as children of the caller's hop,
// queryable under the same ID on /debug/trace/{id}. An embedded tsdb
// snapshots the serving metrics every -scrape-every (/debug/tsdb), and
// -slo-latency-p99, -slo-availability and -slo-recall enable
// multi-window burn-rate SLO alerts on /alerts, with a self-contained
// live dashboard on /debug/dash.
//
// Adaptive effort (docs/ARCHITECTURE.md §4j): -adaptive enables
// per-query early termination (tuned by -stop-patience) and, on indexes
// built with rerank storage, precision escalation of a -margin band of
// candidates through SQ8 re-scoring. -recall-target T goes further and
// closes the loop: a controller reads the live shadow recall estimate
// (so -recall-fvecs is required) and walks the effort ladder — effective
// W, stop patience, escalation margin — to hold recall@k at T with
// minimum work. Knob changes are logged and exported as
// anna_adaptive_knob on /metrics:
//
//	annaserve -index sift.anna -recall-fvecs sift_base.fvecs \
//	  -adaptive -recall-target 0.95
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anna"
	"anna/internal/dataset"
	"anna/internal/qos"
	"anna/internal/simd"
)

// newLogger builds the process-wide structured logger from -log.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("-log must be text or json (got %q)", format)
	}
}

// parseSyncPolicy maps the -wal-sync flag to store options: "always",
// "none", or a group-commit interval like "100ms".
func parseSyncPolicy(s string) (anna.StoreOptions, error) {
	switch s {
	case "always":
		return anna.StoreOptions{Sync: anna.SyncAlways}, nil
	case "none":
		return anna.StoreOptions{Sync: anna.SyncNone}, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return anna.StoreOptions{}, fmt.Errorf("-wal-sync must be always, none, or a positive duration (got %q)", s)
		}
		return anna.StoreOptions{Sync: anna.SyncInterval, SyncEvery: d}, nil
	}
}

// openStore recovers the store in dir, seeding it from indexPath when the
// directory holds no snapshot yet. Recovery details (replayed records,
// torn bytes) are logged by the store itself through opt.Logger.
func openStore(dir, indexPath string, opt anna.StoreOptions, logger *slog.Logger) (*anna.Store, error) {
	if anna.StoreExists(dir) {
		return anna.OpenStore(dir, opt)
	}
	idx, err := anna.LoadIndexFile(indexPath)
	if err != nil {
		return nil, fmt.Errorf("seeding %s from %s: %w", dir, indexPath, err)
	}
	logger.Info("initialising data directory", "dir", dir, "seed_index", indexPath)
	return anna.CreateStore(dir, idx, opt)
}

// newRecallEstimator loads the reference corpus and starts the shadow
// recall worker.
func newRecallEstimator(path string, metric anna.Metric, every, k int) (*anna.RecallEstimator, error) {
	mtx, err := dataset.LoadFvecsFile(path, 0)
	if err != nil {
		return nil, fmt.Errorf("reading recall corpus %s: %w", path, err)
	}
	corpus := make([][]float32, mtx.Rows)
	for i := range corpus {
		corpus[i] = mtx.Row(i)
	}
	return anna.NewRecallEstimator(corpus, metric, &anna.RecallEstimatorOptions{
		SampleEvery: every, K: k,
	})
}

func main() {
	var (
		indexPath   = flag.String("index", "index.anna", "index file from annatrain")
		addr        = flag.String("addr", ":8080", "listen address")
		defaultW    = flag.Int("w", 32, "default clusters inspected per query")
		defaultK    = flag.Int("k", 10, "default results per query")
		maxBatch    = flag.Int("maxbatch", 1024, "maximum queries per request")
		maxInflight = flag.Int("maxinflight", 256, "maximum concurrent /search requests before 429 (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "per-search deadline propagated into the engine (0 = none)")
		pprofOn     = flag.Bool("pprof", true, "serve /debug/pprof/ profiles")
		grace       = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain window")
		withAccel   = flag.Bool("accel", false, `also serve the simulated ANNA backend (requests with "backend":"anna")`)
		dataDir     = flag.String("data", "", "durable data directory: WAL /add batches, snapshot on shutdown, recover on start (empty = serve -index in memory only)")
		walSync     = flag.String("wal-sync", "always", `WAL fsync policy: "always", "none", or a group-commit interval like "100ms"`)
		snapEvery   = flag.Int("snapshot-every", 0, "auto-snapshot after this many added vectors (0 = only /admin/snapshot and shutdown)")
		workers     = flag.Int("workers", 0, "ingest parallelism for /add and WAL replay (0 = GOMAXPROCS); the index is byte-identical for any value")
		logFormat   = flag.String("log", "text", `structured log format: "text" or "json"`)
		slowQuery   = flag.Duration("slow", 250*time.Millisecond, "log /search requests slower than this (negative = never)")
		traceSample = flag.Int("trace-sample", 64, "trace 1-in-N untagged queries into /debug/queries (negative = only X-Request-ID-tagged queries)")
		traceRing   = flag.Int("trace-ring", 256, "recent traces buffered for /debug/queries")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "coalesce concurrent single-query searches for up to this long into one engine batch (negative = disabled)")
		batchMax    = flag.Int("batch-max", 64, "flush a coalesced batch early at this many queries")
		batchConc   = flag.Int("batch-concurrent", 0, "concurrent coalesced engine batches (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 4096, "quantized-query result-cache entries (negative = disabled)")
		tenantsSpec = flag.String("tenants", "", `per-tenant QoS: "key=weight:4,rate:1000,burst:2000,lane:interactive,name:web;key2=lane:bulk" (empty = one default tenant)`)
		recallFvecs = flag.String("recall-fvecs", "", "fvecs reference corpus for live shadow recall estimation (empty = disabled)")
		recallEvery = flag.Int("recall-every", 100, "shadow-check 1-in-N served queries against exact search (with -recall-fvecs)")
		recallK     = flag.Int("recall-k", 10, "recall@K depth of the shadow estimator (with -recall-fvecs)")
		scrapeEvery = flag.Duration("scrape-every", 10*time.Second, "embedded tsdb scrape interval for /debug/tsdb and the SLO engine (negative = disabled)")
		sloLatency  = flag.Duration("slo-latency-p99", 0, "latency SLO: p99 /search bound evaluated by burn-rate alerts on /alerts (0 = off)")
		sloAvail    = flag.Float64("slo-availability", 0, "availability SLO objective in (0,1), e.g. 0.999 (0 = off)")
		sloRecall   = flag.Float64("slo-recall", 0, "recall SLO: rolling shadow recall@k floor in (0,1] (requires -recall-fvecs; 0 = off)")
		adaptiveOn  = flag.Bool("adaptive", false, "per-query adaptive effort: early scan termination, plus SQ8 precision escalation on rerank-enabled indexes")
		stopPat     = flag.Int("stop-patience", 4, "stop a query's cluster scan after this many consecutive non-improving clusters (with -adaptive)")
		escMargin   = flag.Float64("margin", 0.2, "escalation band width as a fraction of the candidate score spread (with -adaptive, rerank-enabled indexes)")
		recallTgt   = flag.Float64("recall-target", 0, "recall@k SLO in (0,1]: a closed-loop controller tunes adaptive effort against the live estimator (requires -recall-fvecs)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "annaserve: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Listen before recovery: while the store replays its WAL the gate
	// answers /healthz 200 (process alive) but /readyz and everything
	// else 503 with a jittered Retry-After, so orchestrators neither
	// kill a recovering node nor route traffic to it early.
	gate := anna.NewReadinessGate()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           gate,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "ready", false)

	var (
		idx   *anna.Index
		store *anna.Store
	)
	if *dataDir != "" {
		opt, perr := parseSyncPolicy(*walSync)
		if perr != nil {
			fatal(perr.Error())
		}
		opt.Workers = *workers
		opt.Logger = logger
		store, err = openStore(*dataDir, *indexPath, opt, logger)
		if err != nil {
			fatal("opening store failed", "err", err)
		}
		idx = store.Index()
	} else {
		idx, err = anna.LoadIndexFile(*indexPath)
		if err != nil {
			fatal("loading index failed", "index", *indexPath, "err", err)
		}
		idx.SetIngestWorkers(*workers)
	}
	srv := anna.NewServer(idx)
	srv.DefaultW = *defaultW
	srv.DefaultK = *defaultK
	srv.MaxBatch = *maxBatch
	srv.MaxInFlight = *maxInflight
	srv.SearchTimeout = *timeout
	srv.DisablePprof = !*pprofOn
	srv.Store = store
	srv.SnapshotEvery = *snapEvery
	srv.Logger = logger
	srv.SlowQuery = *slowQuery
	srv.TraceSampleEvery = *traceSample
	srv.TraceRingSize = *traceRing
	srv.BatchWindow = *batchWindow
	srv.BatchMaxSize = *batchMax
	srv.BatchMaxConcurrent = *batchConc
	srv.CacheSize = *cacheSize
	srv.ScrapeEvery = *scrapeEvery
	srv.SLOLatencyP99 = *sloLatency
	srv.SLOAvailability = *sloAvail
	srv.SLORecall = *sloRecall
	if *tenantsSpec != "" {
		tenants, terr := qos.ParseTenants(*tenantsSpec)
		if terr != nil {
			fatal("parsing -tenants failed", "err", terr)
		}
		srv.Tenants = tenants
	}
	if *recallFvecs != "" {
		est, err := newRecallEstimator(*recallFvecs, idx.Metric(), *recallEvery, *recallK)
		if err != nil {
			fatal("starting recall estimator failed", "err", err)
		}
		defer est.Close()
		srv.Recall = est
		logger.Info("shadow recall estimator running",
			"corpus", *recallFvecs, "sample_every", *recallEvery, "k", *recallK)
	}
	if *recallTgt > 0 && srv.Recall == nil {
		fatal("-recall-target requires -recall-fvecs: the live estimator is the controller's input")
	}
	if *sloRecall > 0 && srv.Recall == nil {
		fatal("-slo-recall requires -recall-fvecs: the shadow estimator feeds the recall SLO")
	}
	if *adaptiveOn || *recallTgt > 0 {
		srv.Adaptive = anna.AdaptiveServing{
			Policy: anna.AdaptiveOptions{
				StopPatience:   *stopPat,
				MinClusters:    2,
				EscalateFactor: 4, // silently inert on indexes without rerank storage
				Margin:         float32(*escMargin),
			},
			RecallTarget: *recallTgt,
		}
		logger.Info("adaptive effort enabled",
			"stop_patience", *stopPat, "margin", *escMargin, "recall_target", *recallTgt)
	}
	if *withAccel {
		cfg := anna.DefaultAcceleratorConfig()
		if *defaultK > cfg.TopK {
			cfg.TopK = *defaultK
		}
		acc, err := anna.NewAccelerator(idx, cfg)
		if err != nil {
			fatal("configuring accelerator failed", "err", err)
		}
		srv.Accelerator = acc
	}

	gate.Ready(srv.Handler())
	durable := "in-memory"
	if store != nil {
		durable = fmt.Sprintf("durable in %s (wal-sync %s)", *dataDir, *walSync)
	}
	logger.Info("serving", "vectors", idx.Len(), "dim", idx.Dim(),
		"metric", idx.Metric().String(), "addr", *addr, "mode", durable)
	logger.Info("simd kernels", "dispatch", simd.Dispatch(),
		"features", simd.Features(), "reason", simd.Reason())

	select {
	case err := <-errc:
		fatal("server failed", "err", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		logger.Info("signal received, draining", "grace", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Warn("drain window expired, closing", "err", err)
			hs.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server error during shutdown", "err", err)
		}
		// Order matters: the HTTP server has drained, but coalesced
		// searches may still sit in the QoS batcher. Drain it before the
		// store snapshot so no in-flight engine batch runs against a
		// closing index.
		srv.Close()
		if store != nil {
			// Checkpoint so the next start replays an empty WAL. Failure
			// is not fatal: the WAL still holds everything acknowledged.
			if err := store.Snapshot(); err != nil {
				logger.Error("shutdown snapshot failed", "err", err)
			}
			if err := store.Close(); err != nil {
				logger.Error("closing store failed", "err", err)
			}
		}
		logger.Info("shut down cleanly")
	}
}
