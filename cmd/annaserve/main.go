// Command annaserve exposes an index built by annatrain as an HTTP JSON
// similarity-search service.
//
// Usage:
//
//	annaserve -index sift.anna -addr :8080
//
// Endpoints:
//
//	POST /search  {"queries": [[...]], "w": 32, "k": 10}
//	POST /add     {"vectors": [[...]]}
//	GET  /stats
//	GET  /healthz
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/pprof/*  runtime profiles (disable with -pprof=false)
//
// The process sheds load with 429 once -maxinflight searches are
// running, bounds each search by -timeout, and drains in-flight
// requests for up to -grace after SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anna"
)

func main() {
	var (
		indexPath   = flag.String("index", "index.anna", "index file from annatrain")
		addr        = flag.String("addr", ":8080", "listen address")
		defaultW    = flag.Int("w", 32, "default clusters inspected per query")
		defaultK    = flag.Int("k", 10, "default results per query")
		maxBatch    = flag.Int("maxbatch", 1024, "maximum queries per request")
		maxInflight = flag.Int("maxinflight", 256, "maximum concurrent /search requests before 429 (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "per-search deadline propagated into the engine (0 = none)")
		pprofOn     = flag.Bool("pprof", true, "serve /debug/pprof/ profiles")
		grace       = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain window")
		withAccel   = flag.Bool("accel", false, `also serve the simulated ANNA backend (requests with "backend":"anna")`)
	)
	flag.Parse()

	idx, err := anna.LoadIndexFile(*indexPath)
	if err != nil {
		log.Fatalf("annaserve: loading index: %v", err)
	}
	srv := anna.NewServer(idx)
	srv.DefaultW = *defaultW
	srv.DefaultK = *defaultK
	srv.MaxBatch = *maxBatch
	srv.MaxInFlight = *maxInflight
	srv.SearchTimeout = *timeout
	srv.DisablePprof = !*pprofOn
	if *withAccel {
		cfg := anna.DefaultAcceleratorConfig()
		if *defaultK > cfg.TopK {
			cfg.TopK = *defaultK
		}
		acc, err := anna.NewAccelerator(idx, cfg)
		if err != nil {
			log.Fatalf("annaserve: configuring accelerator: %v", err)
		}
		srv.Accelerator = acc
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("annaserve: %d vectors (dim %d, %v) on %s\n",
		idx.Len(), idx.Dim(), idx.Metric(), *addr)

	select {
	case err := <-errc:
		log.Fatalf("annaserve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		log.Printf("annaserve: signal received, draining for up to %v", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("annaserve: drain window expired, closing: %v", err)
			hs.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("annaserve: %v", err)
		}
		log.Printf("annaserve: shut down cleanly")
	}
}
