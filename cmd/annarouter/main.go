// Command annarouter is the scatter-gather front door of a sharded
// anna cluster: it partitions the global ID space into per-shard
// stripes, fans every /search out to all annaserve shards and merges
// their top-k lists, and routes each /add batch to one owning shard
// (WAL-before-ack preserved end to end).
//
// Usage:
//
//	annarouter -shards http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// The router holds no index state, so it restarts instantly and can be
// replicated behind a plain load balancer. Every remote hop is
// hardened: per-attempt deadlines, budgeted retries with jittered
// exponential backoff, hedged requests after the shard's observed p99,
// and a per-shard circuit breaker. When shards are lost the router
// degrades instead of failing: searches answer from the surviving
// shards with the coverage declared in an X-Anna-Partial header
// ("shards=2/3") and counted in anna_partial_results_total; only a
// total loss returns 502.
//
// Endpoints (same dialect as a single annaserve):
//
//	POST /search   fan out, merge global top-k
//	POST /add      route to one shard, rewrite IDs into its stripe
//	GET  /stats    aggregate cluster view with per-shard breaker states
//	GET  /healthz  router process liveness
//	GET  /readyz   200 while at least one shard is ready
//	GET  /metrics  Prometheus text exposition
//
// Observability (docs/ARCHITECTURE.md §4k): every routed request
// carries an X-Request-ID and the X-Anna-Trace context to its shards,
// so GET /debug/trace/{id} serves the cluster trace stitched with each
// shard's view of the same request, GET /debug/queries lists recent
// traces slowest-first with per-shard time breakdowns, GET /debug/tsdb
// serves the embedded metrics ring, GET /alerts the SLO burn-rate
// state, and GET /debug/dash a self-contained live dashboard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anna/internal/cluster"
	"anna/internal/qos"
)

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("-log must be text or json (got %q)", format)
	}
}

func main() {
	var (
		addr     = flag.String("addr", ":7080", "listen address")
		shards   = flag.String("shards", "", "comma-separated shard base URLs in stripe order (required)")
		stride   = flag.Int64("stride", cluster.DefaultStride, "global-ID stripe width per shard")
		defaultW = flag.Int("w", 32, "default clusters inspected per query")
		defaultK = flag.Int("k", 10, "default results per query")
		maxBatch = flag.Int("maxbatch", 1024, "maximum queries per request")

		shardTimeout  = flag.Duration("shard-timeout", 2*time.Second, "per-attempt deadline for shard searches")
		addTimeout    = flag.Duration("add-timeout", 10*time.Second, "per-attempt deadline for shard adds")
		retries       = flag.Int("retries", 2, "retries per failed idempotent shard request (0 = disabled)")
		budgetRatio   = flag.Float64("retry-budget", 0.1, "retry-budget deposit per request (bounds retry amplification)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge idempotent requests in flight past the shard p99, clamped to at least this (0 = no hedging)")
		hedgeMax      = flag.Duration("hedge-max", 0, "hedge delay ceiling (default 10x -hedge-after)")
		breakFailures = flag.Int("breaker-failures", 5, "consecutive failures that open a shard's circuit breaker")
		breakCooldown = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before its half-open probe")

		slowQuery   = flag.Duration("slow", 250*time.Millisecond, "log and always record /search requests slower than this (negative = never)")
		traceSample = flag.Int("trace-sample", 64, "trace 1-in-N untagged queries into /debug/queries (negative = only X-Request-ID-tagged queries)")
		traceRing   = flag.Int("trace-ring", 256, "recent cluster traces buffered for /debug/queries and /debug/trace/{id}")
		scrapeEvery = flag.Duration("scrape-every", 10*time.Second, "embedded tsdb scrape interval for /debug/tsdb and the SLO engine (negative = disabled)")
		sloLatency  = flag.Duration("slo-latency-p99", 0, "latency SLO: p99 /search bound evaluated by burn-rate alerts on /alerts (0 = off)")
		sloAvail    = flag.Float64("slo-availability", 0, "availability SLO objective in (0,1), partial-coverage-aware, e.g. 0.999 (0 = off)")

		grace     = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain window")
		logFormat = flag.String("log", "text", `structured log format: "text" or "json"`)
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "annarouter: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var bases []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			bases = append(bases, strings.TrimSuffix(s, "/"))
		}
	}
	if len(bases) == 0 {
		fatal("no shards: pass -shards with at least one annaserve base URL")
	}

	// The flag surface uses 0 = disabled for -retries; the library uses
	// -1 for that and 0 for "default".
	r := *retries
	if r == 0 {
		r = -1
	}
	rt, err := cluster.New(cluster.Config{
		Shards:   bases,
		Stride:   *stride,
		DefaultW: *defaultW,
		DefaultK: *defaultK,
		MaxBatch: *maxBatch,

		Logger:           logger,
		SlowQuery:        *slowQuery,
		TraceSampleEvery: *traceSample,
		TraceRingSize:    *traceRing,
		ScrapeEvery:      *scrapeEvery,
		SLOLatencyP99:    *sloLatency,
		SLOAvailability:  *sloAvail,

		Shard: cluster.ShardOptions{
			Timeout:          *shardTimeout,
			AddTimeout:       *addTimeout,
			Retries:          r,
			Backoff:          qos.Backoff{},
			RetryBudgetRatio: *budgetRatio,
			HedgeAfter:       *hedgeAfter,
			HedgeMax:         *hedgeMax,
			BreakerFailures:  *breakFailures,
			BreakerCooldown:  *breakCooldown,
		},
	})
	if err != nil {
		fatal("configuring router failed", "err", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("routing", "addr", *addr, "shards", len(bases), "stride", *stride)
	for i, b := range bases {
		logger.Info("shard", "index", i, "base", b)
	}

	select {
	case err := <-errc:
		fatal("router failed", "err", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "grace", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Warn("drain window expired, closing", "err", err)
			hs.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("router error during shutdown", "err", err)
		}
		rt.Close()
		logger.Info("shut down cleanly")
	}
}
