// Command annabench regenerates the paper's tables and figures.
//
// Usage:
//
//	annabench -exp fig8                 # throughput vs recall, all datasets
//	annabench -exp fig9 -datasets SIFT1B,Deep1B
//	annabench -exp all -scale full      # the complete evaluation section
//
// Experiments: fig8, fig9, fig10, table1, traffic, exact, related,
// timeline, ablation, all. Scales: quick (seconds-to-minutes), full
// (reproduction scale). See DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anna"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig8|fig9|fig10|table1|traffic|exact|related|timeline|ablation|all)")
		scale    = flag.String("scale", "quick", "workload scale: quick or full")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (SIFT1M,Deep1M,GloVe1M,SIFT1B,Deep1B,TTI1B); empty = all")
		out      = flag.String("out", "", "write the report to this file instead of stdout")
	)
	flag.Parse()

	var sc anna.ExperimentScale
	switch *scale {
	case "quick":
		sc = anna.ScaleQuick
	case "full":
		sc = anna.ScaleFull
	default:
		fatalf("unknown scale %q (quick|full)", *scale)
	}

	var filter []string
	if *datasets != "" {
		filter = strings.Split(*datasets, ",")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}

	names := []string{*exp}
	if *exp == "all" {
		names = anna.Experiments()
	}
	runner := anna.NewExperimentRunner(sc, w)
	for _, name := range names {
		fmt.Fprintf(w, "\n########## experiment: %s (scale=%s) ##########\n", name, *scale)
		if err := runner.Run(name, filter); err != nil {
			fatalf("experiment %s: %v", name, err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "annabench: "+format+"\n", args...)
	os.Exit(1)
}
