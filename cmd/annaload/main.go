// Command annaload is a load generator for the serving path: it drives
// /search with a configurable traffic shape (uniform or Zipfian query
// mix, weighted multi-tenant mix) in closed- or open-loop mode and
// reports latency-vs-throughput curves.
//
// With no -addr it self-hosts: a synthetic dataset is generated and
// indexed in-process and the workload is driven twice — once against a
// baseline server (dynamic batching and the result cache disabled) and
// once against the full serving stack — so the saturation-throughput
// speedup of server-side batching + caching is measured directly:
//
//	go run ./cmd/annaload -duration 2s -out BENCH_serve.json
//
// With -addr it drives a running annaserve over HTTP instead and emits
// a single curve:
//
//	go run ./cmd/annaload -addr http://localhost:8080 -concurrency 8,32,128
//
// With -adaptive (self-host only) a third curve serves the baseline
// shape under per-query adaptive effort (early scan termination), so
// the engine-side win of docs/ARCHITECTURE.md §4j is measured at the
// serving boundary; adaptive_speedup records it against the baseline.
//
// With -router N (self-host only) it additionally splits the corpus
// across N in-process shard servers behind the scatter-gather router
// and sweeps that cluster as a "router-N" curve, so the fan-out and
// merge overhead of sharded serving is measured against the
// single-process configurations.
//
// Closed loop (-mode closed) runs N workers that each keep exactly one
// request in flight, sweeping N over -concurrency: the classic
// saturation measurement. Open loop (-mode open) fires requests at the
// fixed rates in -qps regardless of completions, which exposes queueing
// delay the way production traffic does.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anna"
	"anna/internal/cluster"
	"anna/internal/dataset"
	"anna/internal/pq"
	"anna/internal/qos"
)

// point is one measured (load level, latency) sample of a curve.
type point struct {
	Concurrency int     `json:"concurrency,omitempty"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Requests    int64   `json:"requests"`
	Throttled   int64   `json:"throttled,omitempty"`
	Errors      int64   `json:"errors,omitempty"`
	Dropped     int64   `json:"dropped,omitempty"`
}

// curve is one server configuration swept over the load levels.
type curve struct {
	Config        string         `json:"config"`
	Points        []point        `json:"points"`
	SaturationQPS float64        `json:"saturation_qps"`
	BestP99Ms     float64        `json:"best_p99_ms"`
	Cache         map[string]any `json:"cache,omitempty"`
}

// output is the BENCH_serve.json document.
type output struct {
	Generated         string   `json:"generated"`
	Mode              string   `json:"mode"`
	GOMAXPROCS        int      `json:"gomaxprocs"`
	Dataset           string   `json:"dataset"`
	Zipf              float64  `json:"zipf"`
	TenantMix         string   `json:"tenant_mix,omitempty"`
	Description       string   `json:"description"`
	Curves            []curve  `json:"curves"`
	SaturationSpeedup *float64 `json:"saturation_speedup,omitempty"`
	// P99SpeedupAtPeak compares p99 latency at the highest load level
	// (baseline/batched; >1 means batching lowers tail latency under
	// pressure — at light load coalescing intentionally trades a little
	// latency for throughput, so the comparison is only fair at load).
	P99SpeedupAtPeak *float64 `json:"p99_speedup_at_peak,omitempty"`
	// AdaptiveSpeedup compares the adaptive curve's saturation QPS to
	// the baseline's (both direct serving, no batcher or cache; >1 means
	// per-query early termination buys serving throughput).
	AdaptiveSpeedup *float64 `json:"adaptive_speedup,omitempty"`
}

// target abstracts where requests go: an in-process handler (self-host)
// or a remote server over HTTP.
type target interface {
	// do posts one pre-marshalled /search body and returns the status.
	do(body []byte, apiKey string) (int, error)
	// stats fetches the /stats document (nil when unavailable).
	stats() map[string]any
}

type selfTarget struct{ h http.Handler }

func (t selfTarget) do(body []byte, apiKey string) (int, error) {
	r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
	if apiKey != "" {
		r.Header.Set("X-API-Key", apiKey)
	}
	w := httptest.NewRecorder()
	t.h.ServeHTTP(w, r)
	return w.Code, nil
}

func (t selfTarget) stats() map[string]any {
	r := httptest.NewRequest(http.MethodGet, "/stats", nil)
	w := httptest.NewRecorder()
	t.h.ServeHTTP(w, r)
	var m map[string]any
	if json.Unmarshal(w.Body.Bytes(), &m) != nil {
		return nil
	}
	return m
}

type remoteTarget struct {
	base   string
	client *http.Client
}

func newRemoteTarget(base string, maxConns int) *remoteTarget {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = maxConns
	return &remoteTarget{base: strings.TrimRight(base, "/"), client: &http.Client{Transport: tr}}
}

func (t *remoteTarget) do(body []byte, apiKey string) (int, error) {
	req, err := http.NewRequest(http.MethodPost, t.base+"/search", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func (t *remoteTarget) stats() map[string]any {
	resp, err := t.client.Get(t.base + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var m map[string]any
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return nil
	}
	return m
}

// workload is the prepared traffic: pre-marshalled request bodies plus
// per-worker generators so the hot loop only draws and posts.
type workload struct {
	bodies  [][]byte
	zipf    float64
	shares  []dataset.TenantShare
	seed    int64
	counter atomic.Int64 // hands out distinct generator seeds
}

func (w *workload) generators() (*dataset.QueryMix, *dataset.TenantMix) {
	s := w.seed + w.counter.Add(1)
	return dataset.NewQueryMix(len(w.bodies), w.zipf, s), dataset.NewTenantMix(w.shares, s)
}

// recorder accumulates latency samples and status counts across workers.
type recorder struct {
	mu        sync.Mutex
	latencies []float64 // seconds
	throttled atomic.Int64
	errors    atomic.Int64
	dropped   atomic.Int64
}

func (r *recorder) observe(d time.Duration) {
	r.mu.Lock()
	r.latencies = append(r.latencies, d.Seconds())
	r.mu.Unlock()
}

func (r *recorder) record(status int, err error, d time.Duration) {
	switch {
	case err != nil:
		r.errors.Add(1)
	case status == http.StatusTooManyRequests:
		r.throttled.Add(1)
	case status != http.StatusOK:
		r.errors.Add(1)
	default:
		r.observe(d)
	}
}

func (r *recorder) point(elapsed time.Duration) point {
	sort.Float64s(r.latencies)
	pct := func(p float64) float64 {
		if len(r.latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(r.latencies)-1))
		return r.latencies[i] * 1e3
	}
	return point{
		QPS:       float64(len(r.latencies)) / elapsed.Seconds(),
		P50Ms:     pct(0.50),
		P95Ms:     pct(0.95),
		P99Ms:     pct(0.99),
		Requests:  int64(len(r.latencies)),
		Throttled: r.throttled.Load(),
		Errors:    r.errors.Load(),
		Dropped:   r.dropped.Load(),
	}
}

// runClosed keeps exactly `workers` requests in flight for dur.
func runClosed(tgt target, w *workload, workers int, dur time.Duration) point {
	rec := &recorder{}
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qm, tm := w.generators()
			for time.Now().Before(deadline) {
				body := w.bodies[qm.Next()]
				start := time.Now()
				status, err := tgt.do(body, tm.Next())
				rec.record(status, err, time.Since(start))
			}
		}()
	}
	wg.Wait()
	p := rec.point(dur)
	p.Concurrency = workers
	return p
}

// runOpen fires requests at a fixed rate regardless of completions.
// Outstanding requests are capped; dispatches that would exceed the cap
// are dropped and counted, keeping the generator open-loop instead of
// degrading into a closed one.
func runOpen(tgt target, w *workload, rate float64, dur time.Duration) point {
	rec := &recorder{}
	qm, tm := w.generators()
	interval := time.Duration(float64(time.Second) / rate)
	sem := make(chan struct{}, 8192)
	var wg sync.WaitGroup
	start := time.Now()
	for next := start; time.Since(start) < dur; next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		body, key := w.bodies[qm.Next()], tm.Next()
		select {
		case sem <- struct{}{}:
		default:
			rec.dropped.Add(1)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			status, err := tgt.do(body, key)
			rec.record(status, err, time.Since(t0))
		}()
	}
	wg.Wait()
	p := rec.point(dur)
	p.TargetQPS = rate
	return p
}

// sweep measures one server configuration across all load levels.
func sweep(name string, tgt target, w *workload, mode string, levels []int, rates []float64, dur time.Duration) curve {
	// Warm up: fills connection pools, scratch pools, and (when
	// enabled) the result cache to its steady state.
	warm := dur / 4
	if warm > 500*time.Millisecond {
		warm = 500 * time.Millisecond
	}
	runClosed(tgt, w, 4, warm)

	c := curve{Config: name}
	if mode == "open" {
		for _, r := range rates {
			p := runOpen(tgt, w, r, dur)
			fmt.Fprintf(os.Stderr, "annaload: %-10s target %8.0f qps -> %8.0f qps  p50 %6.2fms  p99 %6.2fms  (throttled %d, dropped %d)\n",
				name, r, p.QPS, p.P50Ms, p.P99Ms, p.Throttled, p.Dropped)
			c.Points = append(c.Points, p)
		}
	} else {
		for _, n := range levels {
			p := runClosed(tgt, w, n, dur)
			fmt.Fprintf(os.Stderr, "annaload: %-10s c=%-4d -> %8.0f qps  p50 %6.2fms  p99 %6.2fms  (throttled %d)\n",
				name, n, p.QPS, p.P50Ms, p.P99Ms, p.Throttled)
			c.Points = append(c.Points, p)
		}
	}
	for i, p := range c.Points {
		if p.QPS > c.SaturationQPS {
			c.SaturationQPS = p.QPS
		}
		if i == 0 || (p.P99Ms > 0 && p.P99Ms < c.BestP99Ms) {
			c.BestP99Ms = p.P99Ms
		}
	}
	c.Cache = nil
	if st := tgt.stats(); st != nil {
		if cacheStats, ok := st["cache"].(map[string]any); ok {
			c.Cache = cacheStats
		}
	}
	return c
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad level %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		addr        = flag.String("addr", "", "target server base URL (empty = self-host a synthetic index in-process)")
		mode        = flag.String("mode", "closed", `load model: "closed" (N workers, 1 in flight each) or "open" (fixed arrival rate)`)
		duration    = flag.Duration("duration", 2*time.Second, "measurement window per load level")
		concLevels  = flag.String("concurrency", "1,4,16,32,64", "closed-loop worker counts to sweep")
		qpsLevels   = flag.String("qps", "500,2000,8000", "open-loop arrival rates to sweep")
		zipf        = flag.Float64("zipf", 1.1, "query popularity skew: Zipf exponent, <=1 for uniform")
		pool        = flag.Int("pool", 2048, "distinct queries in the traffic pool")
		tenantMix   = flag.String("tenant-mix", "", `traffic tenant mix "key:weight,key:weight" (empty = anonymous)`)
		tenantSpec  = flag.String("tenants", "", "self-host server tenant config (qos.ParseTenants syntax)")
		nBase       = flag.Int("n", 50000, "self-host: database vectors")
		dim         = flag.Int("d", 64, "self-host: dimensionality")
		clusters    = flag.Int("clusters", 64, "self-host: coarse clusters")
		w           = flag.Int("w", 32, "clusters inspected per query")
		k           = flag.Int("k", 10, "results per query")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "self-host: coalescing window of the batched config")
		cacheSize   = flag.Int("cache", 4096, "self-host: result-cache entries of the batched config")
		noBaseline  = flag.Bool("no-baseline", false, "self-host: skip the unbatched/uncached baseline curve")
		adaptiveOn  = flag.Bool("adaptive", false, "self-host: also sweep an adaptive-effort config (early termination, batcher and cache disabled) against the baseline")
		stopPat     = flag.Int("stop-patience", 4, "adaptive config: stop a query's scan after this many non-improving clusters")
		router      = flag.Int("router", 0, "self-host: also sweep a cluster of this many shards (corpus split evenly) behind the scatter-gather router (0 = skip)")
		seed        = flag.Int64("seed", 1, "workload seed")
		out         = flag.String("out", "", "write the JSON document here (empty = stdout)")
	)
	flag.Parse()
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "annaload: "+format+"\n", args...)
		os.Exit(1)
	}

	levels, err := parseInts(*concLevels)
	if err != nil {
		fatal("-concurrency: %v", err)
	}
	rates, err := parseFloats(*qpsLevels)
	if err != nil {
		fatal("-qps: %v", err)
	}
	if *mode != "closed" && *mode != "open" {
		fatal(`-mode must be "closed" or "open"`)
	}
	shares, err := dataset.ParseTenantMix(*tenantMix)
	if err != nil {
		fatal("%v", err)
	}

	// The query pool: synthetic clustered queries matching the
	// self-host dataset's structure (also a reasonable shape for a
	// remote target). Bodies are pre-marshalled so the hot loop does no
	// encoding of its own.
	spec := dataset.Spec{
		Name: "load", Metric: pq.L2, N: *nBase, Q: *pool, D: *dim,
		Groups: *clusters, Std: 0.15, Seed: *seed,
	}
	ds := dataset.Generate(spec)
	wl := &workload{zipf: *zipf, shares: shares, seed: *seed}
	for i := 0; i < ds.Queries.Rows; i++ {
		body, err := json.Marshal(map[string]any{
			"queries": [][]float32{ds.Queries.Row(i)}, "w": *w, "k": *k,
		})
		if err != nil {
			fatal("%v", err)
		}
		wl.bodies = append(wl.bodies, body)
	}

	doc := &output{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Mode:       *mode,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset:    fmt.Sprintf("synthetic n=%d d=%d groups=%d pool=%d", *nBase, *dim, *clusters, *pool),
		Zipf:       *zipf,
		TenantMix:  *tenantMix,
		Description: "Serving-path latency vs throughput. 'baseline' serves every request " +
			"individually (batcher and result cache disabled); 'batched' is the full stack " +
			"(dynamic coalescing into ClusterMajor engine batches, quantized-query result " +
			"cache, per-tenant QoS). saturation_speedup = batched/baseline peak QPS. " +
			"'adaptive' (with -adaptive) is the baseline shape under per-query early " +
			"termination; adaptive_speedup = adaptive/baseline peak QPS.",
	}

	if *addr != "" {
		maxConns := 64
		for _, l := range levels {
			if l > maxConns {
				maxConns = l
			}
		}
		doc.Curves = append(doc.Curves, sweep("remote", newRemoteTarget(*addr, maxConns), wl, *mode, levels, rates, *duration))
	} else {
		// Self-host: build once, serve under both configurations.
		vectors := make([][]float32, ds.Base.Rows)
		for i := range vectors {
			vectors[i] = ds.Base.Row(i)
		}
		fmt.Fprintf(os.Stderr, "annaload: building index (n=%d d=%d clusters=%d)...\n", *nBase, *dim, *clusters)
		idx, err := anna.BuildIndex(vectors, anna.L2, anna.BuildOptions{
			NClusters: *clusters, M: 8, Ks: 16, TrainIters: 8, Seed: *seed,
		})
		if err != nil {
			fatal("building index: %v", err)
		}

		newSrv := func(batched bool) *anna.Server {
			s := anna.NewServer(idx)
			s.TraceSampleEvery = -1
			s.SlowQuery = -1
			if batched {
				s.BatchWindow = *batchWindow
				s.CacheSize = *cacheSize
			} else {
				s.BatchWindow, s.CacheSize = -1, -1
			}
			if *tenantSpec != "" {
				t, err := qos.ParseTenants(*tenantSpec)
				if err != nil {
					fatal("-tenants: %v", err)
				}
				s.Tenants = t
			}
			return s
		}

		if !*noBaseline {
			s := newSrv(false)
			doc.Curves = append(doc.Curves, sweep("baseline", selfTarget{s.Handler()}, wl, *mode, levels, rates, *duration))
			s.Close()
		}
		s := newSrv(true)
		doc.Curves = append(doc.Curves, sweep("batched", selfTarget{s.Handler()}, wl, *mode, levels, rates, *duration))
		s.Close()

		if *adaptiveOn {
			// Adaptive effort, same direct (unbatched, uncached) serving
			// shape as the baseline, so the curve isolates the engine-side
			// win of early termination rather than mixing it with
			// coalescing and cache hits.
			as := newSrv(false)
			as.Adaptive = anna.AdaptiveServing{
				Policy: anna.AdaptiveOptions{StopPatience: *stopPat, MinClusters: 2},
			}
			doc.Curves = append(doc.Curves, sweep("adaptive", selfTarget{as.Handler()}, wl, *mode, levels, rates, *duration))
			as.Close()
		}

		if *router > 0 {
			// Sharded cluster: the same corpus split evenly across N
			// in-process shards (each the full serving stack behind a
			// real HTTP hop), fronted by the scatter-gather router —
			// the fan-out + merge overhead measured against the
			// single-process curves above.
			nShards := *router
			fmt.Fprintf(os.Stderr, "annaload: building %d shard indexes...\n", nShards)
			shardClusters := *clusters / nShards
			if shardClusters < 4 {
				shardClusters = 4
			}
			servers := make([]*anna.Server, 0, nShards)
			urls := make([]string, 0, nShards)
			for i := 0; i < nShards; i++ {
				var part [][]float32
				for j := i; j < len(vectors); j += nShards {
					part = append(part, vectors[j])
				}
				sidx, err := anna.BuildIndex(part, anna.L2, anna.BuildOptions{
					NClusters: shardClusters, M: 8, Ks: 16, TrainIters: 8, Seed: *seed + int64(i),
				})
				if err != nil {
					fatal("building shard %d index: %v", i, err)
				}
				ss := anna.NewServer(sidx)
				ss.TraceSampleEvery = -1
				ss.SlowQuery = -1
				ss.BatchWindow = *batchWindow
				ss.CacheSize = *cacheSize
				hs := httptest.NewServer(ss.Handler())
				defer hs.Close()
				servers = append(servers, ss)
				urls = append(urls, hs.URL)
			}
			rt, err := cluster.New(cluster.Config{Shards: urls, DefaultW: *w, DefaultK: *k})
			if err != nil {
				fatal("configuring router: %v", err)
			}
			doc.Curves = append(doc.Curves, sweep(fmt.Sprintf("router-%d", nShards),
				selfTarget{rt.Handler()}, wl, *mode, levels, rates, *duration))
			for _, ss := range servers {
				ss.Close()
			}
		}

		for i := range doc.Curves {
			if doc.Curves[i].Config == "adaptive" && doc.Curves[0].Config == "baseline" && doc.Curves[0].SaturationQPS > 0 {
				sp := doc.Curves[i].SaturationQPS / doc.Curves[0].SaturationQPS
				doc.AdaptiveSpeedup = &sp
				fmt.Fprintf(os.Stderr, "annaload: adaptive saturation %0.0f vs baseline %0.0f qps (%.2fx)\n",
					doc.Curves[i].SaturationQPS, doc.Curves[0].SaturationQPS, sp)
			}
		}
		if len(doc.Curves) >= 2 && doc.Curves[0].Config == "baseline" && doc.Curves[0].SaturationQPS > 0 {
			sp := doc.Curves[1].SaturationQPS / doc.Curves[0].SaturationQPS
			doc.SaturationSpeedup = &sp
			b, q := doc.Curves[0].Points, doc.Curves[1].Points
			if len(b) > 0 && len(q) > 0 && q[len(q)-1].P99Ms > 0 {
				p99 := b[len(b)-1].P99Ms / q[len(q)-1].P99Ms
				doc.P99SpeedupAtPeak = &p99
			}
			fmt.Fprintf(os.Stderr, "annaload: saturation %0.0f -> %0.0f qps (%.2fx)\n",
				doc.Curves[0].SaturationQPS, doc.Curves[1].SaturationQPS, sp)
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "annaload: wrote %s\n", *out)
}
