// Command annatrain builds an IVF-PQ index and saves it to disk.
//
// The database can come from an fvecs file (the standard format of the
// SIFT/Deep/GloVe benchmark suites) or from a built-in synthetic
// generator when no real data is available.
//
// Usage:
//
//	annatrain -fvecs sift_base.fvecs -c 250 -m 64 -ks 256 -o sift.anna
//	annatrain -synthetic sift -n 100000 -c 250 -o synth.anna
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"anna"
	"anna/internal/dataset"
)

func main() {
	var (
		logFormat = flag.String("log", "", `structured log output: "text" or "json" (default: plain prints)`)
		fvecs     = flag.String("fvecs", "", "fvecs file with database vectors")
		maxRows   = flag.Int("maxrows", 0, "cap on vectors read from the fvecs file (0 = all)")
		synthetic = flag.String("synthetic", "", "synthetic generator: sift, deep, glove or tti")
		n         = flag.Int("n", 100000, "synthetic database size")
		c         = flag.Int("c", 250, "coarse clusters |C|")
		m         = flag.Int("m", 64, "PQ sub-spaces M")
		ks        = flag.Int("ks", 256, "codebook size k* (ANNA supports 16 and 256)")
		metric    = flag.String("metric", "", "l2 or ip (defaults to the generator's metric; l2 for fvecs)")
		iters     = flag.Int("iters", 15, "k-means iterations")
		maxTrain  = flag.Int("maxtrain", 50000, "training sample cap (0 = all)")
		seed      = flag.Int64("seed", 42, "training seed")
		hw        = flag.Bool("hw", true, "hardware-faithful f16 rounding of the trained model")
		rotate    = flag.Bool("opq", false, "OPQ-style random rotation preconditioning")
		eta       = flag.Float64("eta", 0, "ScaNN-style anisotropic encoding weight (>1 enables; MIPS)")
		rerank    = flag.Bool("rerank", false, "retain 8-bit reconstructions for re-ranking (D bytes/vector)")
		workers   = flag.Int("workers", 0, "build parallelism: goroutines for training and encoding (0 = GOMAXPROCS); the index is byte-identical for any value")
		out       = flag.String("o", "index.anna", "output index path")
	)
	flag.Parse()

	// say reports a build milestone: through slog when -log selects a
	// structured format, as a plain key=value line otherwise.
	var logger *slog.Logger
	switch *logFormat {
	case "":
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatalf(`-log must be "text" or "json" (got %q)`, *logFormat)
	}
	say := func(msg string, args ...any) {
		if logger != nil {
			logger.Info(msg, args...)
			return
		}
		fmt.Print(msg)
		for i := 0; i+1 < len(args); i += 2 {
			fmt.Printf(" %v=%v", args[i], args[i+1])
		}
		fmt.Println()
	}

	var vectors [][]float32
	met := anna.L2

	switch {
	case *fvecs != "":
		mtx, err := dataset.LoadFvecsFile(*fvecs, *maxRows)
		if err != nil {
			fatalf("reading %s: %v", *fvecs, err)
		}
		vectors = make([][]float32, mtx.Rows)
		for i := range vectors {
			vectors[i] = mtx.Row(i)
		}
		say("loaded fvecs", "vectors", mtx.Rows, "dim", mtx.Cols, "path", *fvecs)
	case *synthetic != "":
		var spec dataset.Spec
		switch *synthetic {
		case "sift":
			spec = dataset.SIFTLike(*n, 1, *seed)
		case "deep":
			spec = dataset.DeepLike(*n, 1, *seed)
		case "glove":
			spec = dataset.GloVeLike(*n, 1, *seed)
			met = anna.InnerProduct
		case "tti":
			spec = dataset.TTILike(*n, 1, *seed)
			met = anna.InnerProduct
		default:
			fatalf("unknown synthetic generator %q", *synthetic)
		}
		ds := dataset.Generate(spec)
		vectors = make([][]float32, ds.N())
		for i := range vectors {
			vectors[i] = ds.Base.Row(i)
		}
		say("generated synthetic vectors", "vectors", ds.N(), "kind", *synthetic, "dim", ds.D())
	default:
		fatalf("provide -fvecs or -synthetic (see -h)")
	}

	switch *metric {
	case "":
	case "l2":
		met = anna.L2
	case "ip":
		met = anna.InnerProduct
	default:
		fatalf("unknown metric %q", *metric)
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	say("training", "vectors", len(vectors), "workers", w)
	start := time.Now()
	idx, err := anna.BuildIndex(vectors, met, anna.BuildOptions{
		NClusters: *c, M: *m, Ks: *ks,
		TrainIters: *iters, MaxTrain: *maxTrain,
		Seed: *seed, HardwareFaithful: *hw,
		OPQRotation:     *rotate,
		AnisotropicEta:  float32(*eta),
		RetainForRerank: *rerank,
		Workers:         *workers,
	})
	if err != nil {
		fatalf("building index: %v", err)
	}
	st := idx.Stats()
	say("trained", "duration", time.Since(start).Round(time.Millisecond),
		"clusters", st.Clusters, "min_list", st.MinListLen, "max_list", st.MaxListLen,
		"code_bytes", st.CodeBytesPerVector,
		"compression", fmt.Sprintf("%.1f:1", st.CompressionRatio))

	if err := idx.SaveFile(*out); err != nil {
		fatalf("saving: %v", err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fatalf("stat: %v", err)
	}
	say("wrote index", "path", *out, "bytes", fi.Size())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "annatrain: "+format+"\n", args...)
	os.Exit(1)
}
