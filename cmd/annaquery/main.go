// Command annaquery loads an index built by annatrain and answers
// queries, either on the software engine or through the simulated ANNA
// accelerator.
//
// Usage:
//
//	annaquery -index sift.anna -queries sift_query.fvecs -w 32 -k 10
//	annaquery -index sift.anna -random 8 -backend anna -w 32 -k 10
//	annaquery -index sift.anna -random 8 -adaptive -stop-patience 4
//
// With -adaptive the software engine applies per-query effort policies
// (early scan termination, and SQ8 precision escalation on
// rerank-enabled indexes); each query then reports how many clusters it
// actually scanned and how many candidates it escalated, alongside the
// batch totals.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"anna"
	"anna/internal/dataset"
	"anna/internal/trace"
)

func main() {
	var (
		indexPath = flag.String("index", "index.anna", "index file from annatrain")
		queries   = flag.String("queries", "", "fvecs file with query vectors")
		maxRows   = flag.Int("maxrows", 0, "cap on queries read (0 = all)")
		random    = flag.Int("random", 0, "instead of -queries, sample this many random indexed-space queries")
		w         = flag.Int("w", 32, "clusters inspected W")
		k         = flag.Int("k", 10, "results per query")
		backend   = flag.String("backend", "software", "software | anna (simulated accelerator)")
		rerank    = flag.Int("rerank", 0, "re-rank factor (>0 refines top-k*factor candidates; index must be trained with -rerank)")
		show      = flag.Int("show", 5, "results printed per query")
		seed      = flag.Int64("seed", 7, "seed for -random")
		traceOn   = flag.Bool("trace", false, "print per-stage span timings for the batch (select/scan/merge; rerank and simulate where applicable)")
		adaptive  = flag.Bool("adaptive", false, "per-query adaptive effort on the software engine: early termination, plus SQ8 escalation on rerank-enabled indexes")
		stopPat   = flag.Int("stop-patience", 4, "stop a query's cluster scan after this many consecutive non-improving clusters (with -adaptive)")
		escMargin = flag.Float64("margin", 0.2, "escalation band width as a fraction of the candidate score spread (with -adaptive, rerank-enabled indexes)")
	)
	flag.Parse()

	idx, err := anna.LoadIndexFile(*indexPath)
	if err != nil {
		fatalf("loading index: %v", err)
	}
	fmt.Printf("index: %d vectors, dim %d, %d clusters, metric %v\n",
		idx.Len(), idx.Dim(), idx.NClusters(), idx.Metric())

	var qs [][]float32
	switch {
	case *queries != "":
		mtx, err := dataset.LoadFvecsFile(*queries, *maxRows)
		if err != nil {
			fatalf("reading queries: %v", err)
		}
		if mtx.Cols != idx.Dim() {
			fatalf("query dim %d, index dim %d", mtx.Cols, idx.Dim())
		}
		qs = make([][]float32, mtx.Rows)
		for i := range qs {
			qs[i] = mtx.Row(i)
		}
	case *random > 0:
		rng := rand.New(rand.NewSource(*seed))
		qs = make([][]float32, *random)
		for i := range qs {
			v := make([]float32, idx.Dim())
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			qs[i] = v
		}
	default:
		fatalf("provide -queries or -random")
	}

	// With -trace, the batch runs with a trace attached: the engine
	// records its select/scan/merge stage spans into it (the same
	// plumbing annaserve uses), and the rerank / simulate arms add
	// their own spans.
	var tr *trace.Trace
	if *traceOn {
		tr = trace.New(trace.NewID())
		tr.Queries, tr.W, tr.K, tr.Backend = len(qs), *w, *k, *backend
	}

	var results [][]anna.Result
	// Per-query adaptive effort figures (clusters scanned, candidates
	// escalated), filled by the -adaptive arm.
	type effortStat struct{ clusters, escalated int64 }
	var effort []effortStat
	switch {
	case *adaptive && *backend == "software" && *rerank == 0:
		// Queries run one at a time so the report's clusters/escalation
		// counters are attributable per query, not just batch totals.
		ao := anna.AdaptiveOptions{
			StopPatience:   *stopPat,
			MinClusters:    2,
			EscalateFactor: 4, // inert on indexes without rerank storage
			Margin:         float32(*escMargin),
		}
		ctx := context.Background()
		if tr != nil {
			ctx = trace.NewContext(ctx, tr)
		}
		results = make([][]anna.Result, len(qs))
		effort = make([]effortStat, len(qs))
		var scanned, clusters, escalated int64
		start := time.Now()
		for i, q := range qs {
			rep, err := idx.SearchBatchContext(ctx, [][]float32{q}, anna.SearchOptions{
				W: *w, K: *k, Adaptive: ao,
			})
			if err != nil {
				fatalf("adaptive search: %v", err)
			}
			results[i] = rep.Results[0]
			effort[i] = effortStat{clusters: rep.ClustersScanned, escalated: rep.Escalations}
			scanned += rep.ScannedVectors
			clusters += rep.ClustersScanned
			escalated += rep.Escalations
		}
		elapsed := time.Since(start)
		fixed := int64(len(qs) * *w)
		fmt.Printf("adaptive software engine: %.0f QPS, %d vectors scanned, %d/%d clusters scanned (%.0f%% of fixed W=%d), %d candidates escalated\n",
			float64(len(qs))/elapsed.Seconds(), scanned, clusters, fixed,
			100*float64(clusters)/float64(fixed), *w, escalated)
	case *rerank > 0:
		base := time.Now()
		results = make([][]anna.Result, len(qs))
		for i, q := range qs {
			rs, err := idx.SearchRerank(q, *w, *k, *rerank)
			if err != nil {
				fatalf("reranked search: %v", err)
			}
			results[i] = rs
		}
		if tr != nil {
			tr.AddSpan("rerank", time.Since(base))
		}
		fmt.Printf("software engine with %dx re-ranking\n", *rerank)
	case *backend == "software":
		ctx := context.Background()
		if tr != nil {
			ctx = trace.NewContext(ctx, tr)
		}
		rep, err := idx.SearchBatchContext(ctx, qs, anna.SearchOptions{
			W: *w, K: *k, Mode: anna.ClusterMajor,
		})
		if err != nil {
			fatalf("searching: %v", err)
		}
		results = rep.Results
		fmt.Printf("software engine: %.0f QPS measured, %d vectors scanned\n",
			rep.QPS, rep.ScannedVectors)
	case *backend == "anna":
		cfg := anna.DefaultAcceleratorConfig()
		if *k > cfg.TopK {
			cfg.TopK = *k
		}
		acc, err := anna.NewAccelerator(idx, cfg)
		if err != nil {
			fatalf("configuring accelerator: %v", err)
		}
		simStart := time.Now()
		rep, err := acc.Simulate(qs, anna.SimParams{W: *w, K: *k})
		if err != nil {
			fatalf("simulating: %v", err)
		}
		if tr != nil {
			tr.AddSpan("simulate", time.Since(simStart))
		}
		results = rep.Results
		fmt.Printf("simulated ANNA: %d cycles, %.0f QPS, %.3f ms latency, %d B traffic\n",
			rep.Cycles, rep.QPS, rep.MeanLatencySeconds*1e3, rep.TrafficBytes)
	default:
		fatalf("unknown backend %q", *backend)
	}

	if tr != nil {
		tr.Finish(0)
		fmt.Printf("trace %s: %d queries in %v\n", tr.ID, tr.Queries, tr.Total.Round(time.Microsecond))
		if tr.Parent != "" {
			fmt.Printf("  %-10s %s\n", "parent", tr.Parent)
		}
		for _, sp := range tr.Spans {
			fmt.Printf("  %-10s %v\n", sp.Name, sp.Duration.Round(time.Microsecond))
		}
		for _, hp := range tr.Hops {
			mark := ""
			if hp.Winner {
				mark = " winner"
			}
			fmt.Printf("  shard%d/%s attempt %d %v%s\n",
				hp.Shard, hp.Kind, hp.Attempt, hp.Duration.Round(time.Microsecond), mark)
		}
		if tr.Scanned > 0 {
			fmt.Printf("  %-10s %d vectors\n", "scanned", tr.Scanned)
		}
		if tr.ClustersScanned > 0 {
			fmt.Printf("  %-10s %d\n", "clusters", tr.ClustersScanned)
		}
		if tr.Escalated > 0 {
			fmt.Printf("  %-10s %d candidates\n", "escalated", tr.Escalated)
		}
	}

	for qi, rs := range results {
		if effort != nil {
			fmt.Printf("query %d [clusters=%d escalated=%d]:", qi, effort[qi].clusters, effort[qi].escalated)
		} else {
			fmt.Printf("query %d:", qi)
		}
		for i, r := range rs {
			if i >= *show {
				break
			}
			fmt.Printf("  (%d, %.4f)", r.ID, r.Score)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "annaquery: "+format+"\n", args...)
	os.Exit(1)
}
