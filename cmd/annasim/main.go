// Command annasim runs one detailed simulation of the ANNA accelerator
// on a synthetic workload and prints results, cycle counts, per-stream
// memory traffic, energy, the Table I silicon breakdown, and (with
// -timeline) the Figure 7 execution trace.
//
// Usage:
//
//	annasim -n 50000 -c 100 -ks 256 -w 16 -b 64
//	annasim -timeline -mode batched
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"

	"anna"
)

func main() {
	var (
		n        = flag.Int("n", 50000, "database vectors")
		d        = flag.Int("d", 128, "dimensionality")
		c        = flag.Int("c", 100, "coarse clusters |C|")
		m        = flag.Int("m", 64, "PQ sub-spaces M")
		ks       = flag.Int("ks", 256, "codebook size k* (16 or 256)")
		metric   = flag.String("metric", "l2", "metric: l2 or ip")
		b        = flag.Int("b", 64, "query batch size B")
		w        = flag.Int("w", 16, "clusters inspected W")
		k        = flag.Int("k", 100, "results per query")
		mode     = flag.String("mode", "batched", "execution mode: batched or baseline")
		scmq     = flag.Int("scmq", 0, "SCMs per query (0 = paper heuristic)")
		timeline = flag.Bool("timeline", false, "print the execution timeline")
		spans    = flag.Int("spans", 48, "timeline spans to print")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	met := anna.L2
	if *metric == "ip" {
		met = anna.InnerProduct
	}

	fmt.Printf("building synthetic workload: N=%d D=%d |C|=%d M=%d k*=%d %v\n",
		*n, *d, *c, *m, *ks, met)
	base := synth(*n, *d, *seed)
	queries := synth(*b, *d, *seed+1)

	idx, err := anna.BuildIndex(base, met, anna.BuildOptions{
		NClusters: *c, M: *m, Ks: *ks, TrainIters: 6,
		MaxTrain: 20000, Seed: *seed, HardwareFaithful: true,
	})
	if err != nil {
		fatalf("building index: %v", err)
	}
	st := idx.Stats()
	fmt.Printf("index: %d vectors, %d clusters, %d B/code, %.1f:1 compression\n",
		st.Vectors, st.Clusters, st.CodeBytesPerVector, st.CompressionRatio)

	cfg := anna.DefaultAcceleratorConfig()
	cfg.Trace = *timeline
	if *k > cfg.TopK {
		cfg.TopK = *k
	}
	acc, err := anna.NewAccelerator(idx, cfg)
	if err != nil {
		fatalf("configuring accelerator: %v", err)
	}

	params := anna.SimParams{W: *w, K: *k, SCMsPerQuery: *scmq}
	var rep *anna.SimReport
	switch *mode {
	case "batched":
		rep, err = acc.Simulate(queries, params)
	case "baseline":
		rep, err = acc.SimulateBaseline(queries, params)
	default:
		fatalf("unknown mode %q", *mode)
	}
	if err != nil {
		fatalf("simulating: %v", err)
	}

	fmt.Printf("\n--- simulation result (%s mode) ---\n", *mode)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cycles\t%d\n", rep.Cycles)
	fmt.Fprintf(tw, "time\t%.6f s\n", rep.Seconds)
	fmt.Fprintf(tw, "throughput\t%.0f QPS\n", rep.QPS)
	fmt.Fprintf(tw, "mean latency\t%.3f ms\n", rep.MeanLatencySeconds*1e3)
	fmt.Fprintf(tw, "memory traffic\t%d B\n", rep.TrafficBytes)
	fmt.Fprintf(tw, "chip energy\t%.3f mJ (%.3f mJ/query)\n",
		rep.ChipEnergyJ*1e3, rep.ChipEnergyJ*1e3/float64(*b))
	fmt.Fprintf(tw, "DRAM energy\t%.3f mJ\n", rep.DRAMEnergyJ*1e3)
	tw.Flush()

	fmt.Println("\nper-phase busy cycles:")
	for _, ph := range []string{"filter", "lut", "scan", "merge"} {
		fmt.Printf("  %-8s %d\n", ph, rep.PhaseCycles[ph])
	}

	fmt.Println("\nper-stream traffic:")
	keys := make([]string, 0, len(rep.TrafficByStream))
	for s := range rep.TrafficByStream {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	for _, s := range keys {
		fmt.Printf("  %-12s %d B\n", s, rep.TrafficByStream[s])
	}

	si := acc.Silicon()
	fmt.Println("\nsilicon (TSMC 40nm, 1 GHz):")
	for _, mrow := range si.Modules {
		fmt.Printf("  %-40s %6.2f mm^2  %6.3f W\n", mrow.Name, mrow.AreaMM2, mrow.PeakW)
	}
	fmt.Printf("  %-40s %6.2f mm^2  %6.3f W\n", "total", si.TotalAreaMM2, si.TotalPeakW)

	if len(rep.Results) > 0 {
		fmt.Printf("\nquery 0 top-5: ")
		for i, r := range rep.Results[0] {
			if i == 5 {
				break
			}
			fmt.Printf("(%d, %.3f) ", r.ID, r.Score)
		}
		fmt.Println()
	}

	if *timeline {
		fmt.Printf("\n--- execution timeline (first %d spans; Figure 7 overlap) ---\n", *spans)
		for i, sp := range rep.Timeline {
			if i >= *spans {
				break
			}
			fmt.Printf("  [%8d .. %8d] %-6s %s\n", sp.Start, sp.End, sp.Unit, sp.Work)
		}
		fmt.Printf("\n--- gantt view ---\n%s", anna.RenderTimeline(rep.Timeline, 100))
	}
}

// synth generates clustered Gaussian vectors.
func synth(n, d int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	const groups = 32
	centers := make([][]float32, groups)
	for i := range centers {
		centers[i] = make([]float32, d)
		for j := range centers[i] {
			centers[i][j] = float32(rng.NormFloat64())
		}
	}
	out := make([][]float32, n)
	for i := range out {
		ctr := centers[rng.Intn(groups)]
		v := make([]float32, d)
		for j := range v {
			v[j] = ctr[j] + float32(rng.NormFloat64())*0.25
		}
		out[i] = v
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "annasim: "+format+"\n", args...)
	os.Exit(1)
}
