package anna

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"anna/internal/adaptive"
)

// Static adaptive policy: searches succeed, the effort instruments are
// exported, and /stats reports the operating point.
func TestServerAdaptiveStaticPolicy(t *testing.T) {
	idx, base, queries := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	s.CacheSize = -1
	s.BatchWindow = -1
	s.Adaptive = AdaptiveServing{Policy: AdaptiveOptions{StopPatience: 2, MinClusters: 2}}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for _, q := range queries[:4] {
		resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{q}, K: 10})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out searchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(out.Results) != 1 || len(out.Results[0]) != 10 {
			t.Fatalf("shape: %d rows", len(out.Results))
		}
	}
	// A pinned W still terminates early; results stay valid.
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[3]}, W: 24, K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned-W status %d", resp.StatusCode)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"anna_adaptive_clusters_scanned",
		"anna_adaptive_escalations_total",
		`anna_adaptive_knob{name="stop_patience"} 2`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Early termination visible: fewer clusters scanned than queries*W.
	var stats map[string]any
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ad, ok := stats["adaptive"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no adaptive section: %v", stats)
	}
	if got := ad["stop_patience"].(float64); got != 2 {
		t.Errorf("stats stop_patience = %v, want 2", got)
	}
}

// The cache key must fingerprint the adaptive operating point: a knob
// step makes previously cached rows unreachable instead of serving
// results computed at a different effort level.
func TestAdaptiveCacheKeyIncludesKnobs(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	q := base[0]

	base0 := s.appendCacheKey(nil, q, 8, 10)
	k1 := adaptive.Knobs{W: 8, StopPatience: 2, MinClusters: 1, EscalateFactor: 0, Margin: 0}
	s.knobs.Store(&k1)
	with1 := s.appendCacheKey(nil, q, 8, 10)
	k2 := k1
	k2.StopPatience = 4
	s.knobs.Store(&k2)
	with2 := s.appendCacheKey(nil, q, 8, 10)

	if bytes.Equal(base0, with1) {
		t.Error("key with adaptive knobs equals the plain key")
	}
	if bytes.Equal(with1, with2) {
		t.Error("keys at different stop_patience are equal")
	}
	s.knobs.Store(&k1)
	again := s.appendCacheKey(nil, q, 8, 10)
	if !bytes.Equal(with1, again) {
		t.Error("same knobs do not reproduce the same key")
	}
}

// The closed loop: a server with -recall-target semantics relaxes effort
// from the safe maximum while the live estimate shows headroom, and
// holds the rolling recall within 2 points of the target.
func TestServerRecallTargetConvergence(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	queries := clusteredVectors(48, 32, 24, 7)

	est, err := NewRecallEstimator(base, L2, &RecallEstimatorOptions{
		SampleEvery: 1, K: 10, Window: 48, QueueDepth: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(est.Close)

	// Anchor the SLO to what this index actually delivers at full
	// effort, so the test pins controller behaviour, not corpus recall.
	full := 0.0
	for _, q := range queries {
		got := idx.Search(q, 24, 10)
		truth, err := ExactSearch(base, L2, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		hit := 0
		for _, g := range got {
			for _, tr := range truth {
				if g.ID == tr.ID {
					hit++
					break
				}
			}
		}
		full += float64(hit) / 10
	}
	full /= float64(len(queries))
	target := full - 0.05
	if target <= 0 {
		t.Fatalf("full-effort recall %.3f leaves no room for a target", full)
	}

	s := NewServer(idx)
	s.DefaultW = 24
	s.CacheSize = -1
	s.BatchWindow = -1
	s.Recall = est
	s.Adaptive = AdaptiveServing{
		Policy:       AdaptiveOptions{StopPatience: 2, MinClusters: 2},
		RecallTarget: target,
		Interval:     2 * time.Millisecond,
		MinW:         2,
		Levels:       6,
		Hysteresis:   2,
		MinSamples:   24,
		Deadband:     0.02,
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	if s.knobs.Load() == nil {
		t.Fatal("controller did not publish initial knobs")
	}
	if got := int(s.effort.Load()); got != 6 {
		t.Fatalf("initial effort %d, want the ladder top (6)", got)
	}

	// Drive traffic (w omitted, so the controller's effective W applies)
	// until the controller has settled: it stepped at least once and the
	// rolling estimate holds the SLO.
	deadline := time.Now().Add(30 * time.Second)
	stable := 0
	for time.Now().Before(deadline) && stable < 3 {
		before := s.effort.Load()
		for _, q := range queries {
			resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{q}, K: 10})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		waitProcessed(t, est)
		time.Sleep(10 * time.Millisecond) // a few controller ticks
		if s.effort.Load() == before && est.Rolling() >= target-0.02 {
			stable++
		} else {
			stable = 0
		}
	}

	kn := s.knobs.Load()
	effort := int(s.effort.Load())
	rolling := est.Rolling()
	t.Logf("converged: effort %d/6, W %d, rolling recall %.3f (target %.3f, full %.3f)",
		effort, kn.W, rolling, target, full)
	if stable < 3 {
		t.Fatalf("controller never settled: effort %d, rolling %.3f vs target %.3f", effort, rolling, target)
	}
	if effort >= 6 {
		t.Errorf("controller never relaxed from max effort despite %.3f headroom", full-target)
	}
	if rolling < target-0.02 {
		t.Errorf("SLO not held: rolling %.3f < target %.3f - 0.02", rolling, target)
	}
}
