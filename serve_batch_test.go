package anna

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"anna/internal/metrics"
	"anna/internal/qos"
)

// postJSONHdr posts body with extra headers.
func postJSONHdr(t *testing.T, url string, body any, hdr map[string]string) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func searchOne(t *testing.T, url string, q []float32, w, k int) []searchResult {
	t.Helper()
	resp := postJSON(t, url+"/search", searchRequest{Queries: [][]float32{q}, W: w, K: k})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("got %d result rows for 1 query", len(out.Results))
	}
	return out.Results[0]
}

// Coalesced serving returns exactly what per-request serving returns,
// for any coalesce window — the acceptance pin for the dynamic batcher.
func TestBatchedServingBitExact(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)

	// Reference: per-request execution, batcher and cache disabled.
	ref := NewServer(idx)
	ref.BatchWindow, ref.CacheSize = -1, -1
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	want := make([][]searchResult, len(queries))
	for i, q := range queries {
		want[i] = searchOne(t, refTS.URL, q, 16, 10)
	}

	for _, window := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond} {
		t.Run(window.String(), func(t *testing.T) {
			s := NewServer(idx)
			s.BatchWindow = window
			s.CacheSize = -1 // isolate the batcher
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			// 64 concurrent single-query requests cycling the query set:
			// these coalesce into shared engine batches.
			const n = 64
			var wg sync.WaitGroup
			got := make([][]searchResult, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = searchOne(t, ts.URL, queries[i%len(queries)], 16, 10)
				}(i)
			}
			wg.Wait()

			for i := 0; i < n; i++ {
				w := want[i%len(queries)]
				if len(got[i]) != len(w) {
					t.Fatalf("request %d: %d results, want %d", i, len(got[i]), len(w))
				}
				for j := range w {
					if got[i][j] != w[j] {
						t.Errorf("request %d result %d: batched %+v, unbatched %+v", i, j, got[i][j], w[j])
					}
				}
			}
			if flushes := s.m.flushes.Value(); flushes == 0 || flushes >= n {
				t.Errorf("%d engine flushes for %d concurrent requests (no coalescing?)", flushes, n)
			} else {
				t.Logf("window %v: %d requests rode %d engine batches", window, n, flushes)
			}
		})
	}
}

// The result cache serves repeats without touching the engine, and /add
// invalidates it — a repeated query sees the new vector, never the
// cached pre-add results.
func TestResultCacheInvalidatedByAdd(t *testing.T) {
	s, ts, _ := newTestServer(t)
	q := clusteredVectors(1, 32, 24, 99)[0]

	first := searchOne(t, ts.URL, q, 24, 10)
	again := searchOne(t, ts.URL, q, 24, 10)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("repeat query diverged: %+v vs %+v", first[i], again[i])
		}
	}
	c := s.cache.Load()
	if c == nil {
		t.Fatal("cache not enabled by default")
	}
	if hits, _, _, _ := c.Stats(); hits == 0 {
		t.Fatal("repeat of an identical query did not hit the cache")
	}

	// Ingest the query vector itself: the exact duplicate must now
	// appear in the results, so serving the cached pre-add row would be
	// a visible staleness bug.
	resp := postJSON(t, ts.URL+"/add", addRequest{Vectors: [][]float32{q}})
	var added addResponse
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	after := searchOne(t, ts.URL, q, 24, 10)
	found := false
	for _, r := range after {
		if r.ID == added.FirstID {
			found = true
		}
	}
	if !found {
		t.Errorf("exact duplicate id %d missing from post-add results %+v (stale cache?)", added.FirstID, after)
	}
	if _, _, _, inv := c.Stats(); inv != 1 {
		t.Errorf("cache invalidations %d, want 1", inv)
	}
}

// Concurrent /search and /add traffic under the batcher and cache: run
// under -race in CI. After the dust settles, a search for the last
// added vector must see it (no stale cached row survives).
func TestConcurrentSearchAddUnderBatcher(t *testing.T) {
	s, ts, base := newTestServer(t)
	_ = s
	extra := clusteredVectors(24, 32, 24, 7)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// A small fixed query set maximizes cache hits racing the
				// invalidations.
				searchOne(t, ts.URL, base[(g+i)%8], 16, 5)
			}
		}(g)
	}
	var lastID int64
	for i := 0; i < len(extra); i++ {
		resp := postJSON(t, ts.URL+"/add", addRequest{Vectors: [][]float32{extra[i]}})
		var added addResponse
		if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		lastID = added.FirstID
	}
	close(stop)
	wg.Wait()

	res := searchOne(t, ts.URL, extra[len(extra)-1], 24, 10)
	found := false
	for _, r := range res {
		if r.ID == lastID {
			found = true
		}
	}
	if !found {
		t.Errorf("last added vector %d missing from its own search results %+v", lastID, res)
	}
}

// The pooled-scratch pin: a single-query request on the direct path
// stays within a bounded allocation budget. The bound is far below the
// pre-pooling cost (every request allocated its decode buffers, row
// tables, and response arena fresh) but leaves headroom for the
// engine's own per-batch allocations.
func TestSearchAllocsPerRequest(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	s.TraceSampleEvery = -1
	s.SlowQuery = -1
	s.BatchWindow = -1 // direct path: no batcher goroutine handoff
	s.CacheSize = -1
	h := s.Handler()

	body, err := json.Marshal(searchRequest{Queries: [][]float32{base[3]}, W: 8, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	for i := 0; i < 16; i++ {
		run() // warm the pools and dynamic label caches
	}
	avg := testing.AllocsPerRun(100, run)
	t.Logf("allocs per /search request: %.1f", avg)
	if avg > 120 {
		t.Errorf("allocs per request %.1f, want <= 120 (scratch pooling regressed)", avg)
	}
}

// Cache hits skip the engine entirely, so their allocation budget is
// tighter still.
func TestSearchAllocsCacheHit(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	s.TraceSampleEvery = -1
	s.SlowQuery = -1
	s.BatchWindow = -1
	h := s.Handler()

	body, err := json.Marshal(searchRequest{Queries: [][]float32{base[3]}, W: 8, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	for i := 0; i < 16; i++ {
		run()
	}
	if hits, _, _, _ := s.cache.Load().Stats(); hits == 0 {
		t.Fatal("warmup never hit the cache")
	}
	avg := testing.AllocsPerRun(100, run)
	t.Logf("allocs per cache-hit request: %.1f", avg)
	if avg > 60 {
		t.Errorf("allocs per cache-hit request %.1f, want <= 60", avg)
	}
}

// 429 responses carry the queue depth and a jittered Retry-After.
func TestOverloadResponseShape(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.MaxInFlight = 1
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Errorf("Retry-After %q, want an integer in [1,3]", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Error             string `json:"error"`
		QueueDepth        *int   `json:"queue_depth"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" || body.QueueDepth == nil || body.RetryAfterSeconds != ra {
		t.Errorf("429 body %+v does not carry error/queue_depth/retry_after_seconds", body)
	}
	if n := s.m.rejectDepth.Count(); n != 1 {
		t.Errorf("rejected-queue-depth observations %d, want 1", n)
	}
}

// Per-tenant token buckets reject over-quota traffic with 429 and a
// tenant-labelled counter; other tenants are unaffected.
func TestTenantQuota(t *testing.T) {
	s, ts, base := newTestServer(t)
	tenants, err := qos.ParseTenants("key-slow=rate:0.0001,burst:2,name:slow;key-fast=name:fast")
	if err != nil {
		t.Fatal(err)
	}
	s.Tenants = tenants
	body := searchRequest{Queries: [][]float32{base[0]}}

	for i := 0; i < 2; i++ {
		resp := postJSONHdr(t, ts.URL+"/search", body, map[string]string{"X-API-Key": "key-slow"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := postJSONHdr(t, ts.URL+"/search", body, map[string]string{"X-API-Key": "key-slow"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("quota 429 without Retry-After")
	}
	var e map[string]any
	json.NewDecoder(resp.Body).Decode(&e)
	if msg, _ := e["error"].(string); msg == "" {
		t.Errorf("quota 429 body %v has no error", e)
	}

	// The other tenant (and the Bearer form of the same key) still flows.
	ok := postJSONHdr(t, ts.URL+"/search", body, map[string]string{"Authorization": "Bearer key-fast"})
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Errorf("unthrottled tenant got %d", ok.StatusCode)
	}

	throttled := s.m.reg.Counter("anna_throttled_requests_total",
		"Requests rejected by per-tenant token-bucket quota.",
		metrics.Label{Key: "tenant", Value: "slow"})
	if throttled.Value() != 1 {
		t.Errorf("throttled counter %d, want 1", throttled.Value())
	}
}

// Multi-query requests never ride the batcher (they are already engine
// batches) and still serve partial cache hits per query.
func TestMultiQueryPartialCacheHits(t *testing.T) {
	s, ts, _ := newTestServer(t)
	qs := clusteredVectors(4, 32, 24, 55)

	// Prime the cache with two of the four queries.
	searchOne(t, ts.URL, qs[0], 16, 5)
	searchOne(t, ts.URL, qs[2], 16, 5)

	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: qs, W: 16, K: 5})
	defer resp.Body.Close()
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("%d rows for 4 queries", len(out.Results))
	}
	for i, row := range out.Results {
		single := searchOne(t, ts.URL, qs[i], 16, 5)
		for j := range single {
			if row[j] != single[j] {
				t.Errorf("query %d result %d: multi %+v, single %+v", i, j, row[j], single[j])
			}
		}
	}
	hits, _, _, _ := s.cache.Load().Stats()
	if hits < 2 {
		t.Errorf("cache hits %d, want >= 2 (primed queries should hit inside the multi-query request)", hits)
	}
}
