// Package anna is a from-scratch reproduction of ANNA (Approximate
// Nearest Neighbor search Accelerator), the specialized architecture for
// product-quantization-based approximate nearest neighbor search
// published at HPCA 2022.
//
// The package provides three layers:
//
//   - A complete software ANNS stack: two-level product quantization
//     (IVF-PQ) index building, training (k-means / k-means++), encoding
//     with packed 4-bit or 8-bit codes, and multi-threaded search for
//     both inner-product (MIPS) and L2 similarity — the role Facebook
//     Faiss and Google ScaNN play in the paper.
//
//   - A cycle-level simulator of the ANNA accelerator: the
//     Cluster/Codebook Processing Module, Encoded Vector Fetch Module,
//     Similarity Computation Modules with P-heap top-k units, the memory
//     system, and the Section-IV memory-traffic-optimized batch
//     scheduler. Simulated searches return real results (bit-identical
//     to the half-precision software reference) along with cycle counts,
//     memory traffic, and energy.
//
//   - An experiment harness that regenerates every table and figure of
//     the paper's evaluation; see the Experiment functions and
//     cmd/annabench.
//
// Quick start:
//
//	idx, err := anna.BuildIndex(vectors, anna.L2, anna.BuildOptions{
//		NClusters: 250, M: 64, Ks: 256,
//	})
//	...
//	results := idx.Search(query, 32, 10) // top-10, probing 32 clusters
//
// To run the same search on the simulated accelerator:
//
//	acc, err := anna.NewAccelerator(idx, anna.DefaultAcceleratorConfig())
//	...
//	rep, err := acc.Simulate(queries, anna.SimParams{W: 32, K: 10})
//	fmt.Println(rep.QPS, rep.Results[0])
package anna
