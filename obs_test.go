package anna

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anna/internal/trace"
)

// newObsServer builds a test server with the scraper running fast and
// the latency SLO on, so the obs endpoints have data to serve.
func newObsServer(t *testing.T) (*Server, string, [][]float32) {
	t.Helper()
	idx, base, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	s.ScrapeEvery = 10 * time.Millisecond
	s.SLOLatencyP99 = 50 * time.Millisecond
	s.SLOAvailability = 0.999
	ts := newTS(t, s)
	t.Cleanup(s.Close)
	return s, ts, base
}

func newTS(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s decode: %v", url, err)
	}
}

// The observability surface must be live when scraping is on: tsdb
// series with points, SLO alerts, and the self-contained dashboard.
func TestObsEndpoints(t *testing.T) {
	_, ts, base := newObsServer(t)
	resp := postJSON(t, ts+"/search", searchRequest{Queries: [][]float32{base[0]}, K: 3})
	resp.Body.Close()
	time.Sleep(50 * time.Millisecond) // a few scrape ticks

	var db struct {
		IntervalMS int64                        `json:"interval_ms"`
		Series     map[string][]json.RawMessage `json:"series"`
	}
	getJSON(t, ts+"/debug/tsdb", &db)
	if db.IntervalMS != 10 {
		t.Errorf("interval_ms = %d, want 10", db.IntervalMS)
	}
	for _, name := range []string{"requests", "errors_5xx", "queries", "latency_p99_ms", "latency_slow", "latency_total"} {
		if len(db.Series[name]) == 0 {
			t.Errorf("series %q missing or empty (have %d series)", name, len(db.Series))
		}
	}

	var alerts struct {
		SLOs []struct {
			SLO   string `json:"slo"`
			State string `json:"state"`
		} `json:"slos"`
	}
	getJSON(t, ts+"/alerts", &alerts)
	names := map[string]string{}
	for _, a := range alerts.SLOs {
		names[a.SLO] = a.State
	}
	if names["latency_p99"] != "ok" || names["availability"] != "ok" {
		t.Errorf("alerts = %v, want latency_p99 and availability ok", names)
	}

	dash, err := http.Get(ts + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer dash.Body.Close()
	body, _ := io.ReadAll(dash.Body)
	if dash.StatusCode != http.StatusOK || !strings.Contains(string(body), "annaserve") {
		t.Fatalf("dash status %d, body %.80s", dash.StatusCode, body)
	}
}

// A negative ScrapeEvery must disable the whole obs stack.
func TestObsDisabled(t *testing.T) {
	idx, _, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	s.ScrapeEvery = -1
	ts := newTS(t, s)
	t.Cleanup(s.Close)
	for _, path := range []string{"/debug/tsdb", "/alerts", "/debug/dash"} {
		resp, err := http.Get(ts + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d with obs disabled, want 404", path, resp.StatusCode)
		}
	}
}

// An incoming X-Anna-Trace header must force a trace whose parent is
// the caller's span — the shard half of cross-process stitching.
func TestWireHeaderForcesTraceWithParent(t *testing.T) {
	_, ts, base := newObsServer(t)
	b, _ := json.Marshal(searchRequest{Queries: [][]float32{base[0]}, K: 3})
	req, _ := http.NewRequest(http.MethodPost, ts+"/search", strings.NewReader(string(b)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.HeaderWire, trace.FormatWire("wire-42", "shard7"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	// The wire ID doubles as the request ID when none is set explicitly.
	if got := resp.Header.Get(requestIDHeader); got != "wire-42" {
		t.Errorf("request ID echo = %q, want wire-42", got)
	}

	var tr trace.Trace
	getJSON(t, ts+"/debug/trace/wire-42", &tr)
	if tr.ID != "wire-42" || tr.Parent != "shard7" {
		t.Errorf("trace id=%q parent=%q, want wire-42/shard7", tr.ID, tr.Parent)
	}
	if len(tr.Spans) == 0 {
		t.Errorf("wire-forced trace has no spans")
	}
}
