package anna

import (
	"runtime"
	"time"

	"anna/internal/slo"
	"anna/internal/tsdb"
)

// Serving-path observability (docs/ARCHITECTURE.md §4k): the embedded
// tsdb snapshots the serving counters on a fixed interval, and the SLO
// burn-rate engine evaluates multi-window burn over those snapshots on
// every scrape. Both hang off the Server and share its lifecycle: built
// at Handler time, stopped by Close.

// obsInterval resolves the scrape interval (0 = 10s default).
func obsInterval(d time.Duration) time.Duration {
	if d == 0 {
		return 10 * time.Second
	}
	return d
}

// obsCapacity sizes the tsdb ring to retain at least the slow-long burn
// window, clamped to [256, 4096] scrapes.
func obsCapacity(slowLong, interval time.Duration) int {
	if slowLong <= 0 {
		slowLong = 6 * time.Hour
	}
	n := int(slowLong/interval) + 8
	if n < 256 {
		n = 256
	}
	if n > 4096 {
		n = 4096
	}
	return n
}

// initObs builds the tsdb and SLO engine from the Scrape*/SLO* knobs,
// once, at Handler time. A negative ScrapeEvery disables everything.
func (s *Server) initObs() {
	s.obsOnce.Do(func() {
		if s.ScrapeEvery < 0 {
			return
		}
		interval := obsInterval(s.ScrapeEvery)
		opt := s.SLOOptions
		if opt.Logger == nil {
			opt.Logger = s.slogger()
		}

		searchHist := s.m.reqDuration["search"]
		series := []tsdb.Series{
			{Name: "requests", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(s.resps.Load()) }},
			{Name: "errors_5xx", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(s.resps5xx.Load()) }},
			{Name: "queries", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(s.m.queries.Value()) }},
			{Name: "latency_p99_ms", Kind: tsdb.GaugeKind, Sample: func() float64 { return searchHist.Quantile(0.99) * 1000 }},
			{Name: "inflight", Kind: tsdb.GaugeKind, Sample: func() float64 { return float64(s.inflight.Load()) }},
			{Name: "goroutines", Kind: tsdb.GaugeKind, Sample: func() float64 { return float64(runtime.NumGoroutine()) }},
		}
		var slos []slo.SLO

		if s.SLOLatencyP99 > 0 {
			// The latency SLO is windowed, not cumulative: "slow" and
			// "total" are counters derived from the latency histogram's
			// bucket counts, so the burn rate reads the share of requests
			// over the bound within each window — and recovers once the
			// slowness stops (a cumulative p99 never forgets). The bound
			// snaps to the nearest histogram bucket edge, the tightest
			// threshold the buckets can answer exactly.
			bound := searchHist.NearestBound(s.SLOLatencyP99.Seconds())
			series = append(series,
				tsdb.Series{Name: "latency_slow", Kind: tsdb.CounterKind,
					Sample: func() float64 { return float64(searchHist.Count() - searchHist.CountLE(bound)) }},
				tsdb.Series{Name: "latency_total", Kind: tsdb.CounterKind,
					Sample: func() float64 { return float64(searchHist.Count()) }},
			)
			slos = append(slos, slo.SLO{
				Name: "latency_p99", Objective: 0.99,
				BadRatio: nil, // bound after db exists, below
			})
		}
		if s.SLOAvailability > 0 {
			slos = append(slos, slo.SLO{Name: "availability", Objective: s.SLOAvailability})
		}
		if s.SLORecall > 0 && s.Recall != nil {
			series = append(series, tsdb.Series{Name: "recall", Kind: tsdb.GaugeKind, Sample: s.Recall.Rolling})
			slos = append(slos, slo.SLO{Name: "recall", Objective: 0.99})
		}

		db := tsdb.New(obsCapacity(opt.SlowLong, interval), series...)
		for i := range slos {
			switch slos[i].Name {
			case "latency_p99":
				slos[i].BadRatio = slo.BadShare(db, "latency_total", slo.Part{Series: "latency_slow", Weight: 1})
			case "availability":
				slos[i].BadRatio = slo.BadShare(db, "requests", slo.Part{Series: "errors_5xx", Weight: 1})
			case "recall":
				// Zero scrapes are "no shadow samples yet", not zero
				// recall — skip them rather than fire on an idle server.
				slos[i].BadRatio = slo.BadBelow(db, "recall", s.SLORecall, true)
			}
		}
		eng := slo.New(opt, slos...)
		eng.Register(s.m.reg)
		db.OnScrape(eng.EvaluateAt)
		db.Start(interval)
		s.db, s.sloEng = db, eng
	})
}
