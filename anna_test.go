package anna

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// clusteredVectors generates n vectors around g Gaussian centers.
func clusteredVectors(n, d, g int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, g)
	for i := range centers {
		centers[i] = make([]float32, d)
		for j := range centers[i] {
			centers[i][j] = float32(rng.NormFloat64()) * 3
		}
	}
	out := make([][]float32, n)
	for i := range out {
		c := centers[rng.Intn(g)]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())*0.3
		}
		out[i] = v
	}
	return out
}

func buildTestIndex(t testing.TB, metric Metric, ks int) (*Index, [][]float32, [][]float32) {
	t.Helper()
	base := clusteredVectors(3000, 32, 24, 1)
	queries := clusteredVectors(12, 32, 24, 2)
	idx, err := BuildIndex(base, metric, BuildOptions{
		NClusters: 24, M: 8, Ks: ks, TrainIters: 6, Seed: 3,
		HardwareFaithful: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return idx, base, queries
}

func TestBuildIndexValidation(t *testing.T) {
	good := clusteredVectors(300, 8, 4, 1)
	cases := []struct {
		name string
		vecs [][]float32
		opt  BuildOptions
	}{
		{"no vectors", nil, BuildOptions{NClusters: 1, M: 2, Ks: 4}},
		{"zero dim", [][]float32{{}}, BuildOptions{NClusters: 1, M: 2, Ks: 4}},
		{"ragged", [][]float32{{1, 2}, {1}}, BuildOptions{NClusters: 1, M: 2, Ks: 4}},
		{"bad clusters", good, BuildOptions{NClusters: 0, M: 2, Ks: 4}},
		{"too many clusters", good, BuildOptions{NClusters: 301, M: 2, Ks: 4}},
		{"M not dividing", good, BuildOptions{NClusters: 4, M: 3, Ks: 4}},
		{"Ks too small", good, BuildOptions{NClusters: 4, M: 2, Ks: 1}},
		{"Ks too big", good, BuildOptions{NClusters: 4, M: 2, Ks: 300}},
		{"Ks above N", good[:10], BuildOptions{NClusters: 2, M: 2, Ks: 16}},
	}
	for _, c := range cases {
		if _, err := BuildIndex(c.vecs, L2, c.opt); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestSearchFindsPlantedNeighbor(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	// A query equal to a database vector must rank it (or a quantization
	// twin) first with high probability; verify against exact search.
	for _, qi := range []int{0, 100, 2999} {
		got := idx.Search(base[qi], idx.NClusters(), 10)
		if len(got) != 10 {
			t.Fatalf("got %d results", len(got))
		}
		exact, err := ExactSearch(base, L2, base[qi], 10)
		if err != nil {
			t.Fatal(err)
		}
		if exact[0].ID != int64(qi) {
			t.Fatalf("exact search did not find the planted vector")
		}
		found := false
		for _, r := range got[:5] {
			if r.ID == int64(qi) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("self-query %d not in top-5: %+v", qi, got[:5])
		}
	}
}

func TestRecallReasonable(t *testing.T) {
	idx, base, queries := buildTestIndex(t, L2, 16)
	var total float64
	for _, q := range queries {
		ex, err := ExactSearch(base, L2, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		truth := make([]int64, len(ex))
		for i, r := range ex {
			truth[i] = r.ID
		}
		got := idx.Search(q, 8, 100)
		total += Recall(10, 100, truth, got)
	}
	if avg := total / float64(len(queries)); avg < 0.6 {
		t.Errorf("recall 10@100 = %.2f, too low", avg)
	}
}

func TestSearchBatchModesAgree(t *testing.T) {
	idx, _, queries := buildTestIndex(t, InnerProduct, 16)
	a, err := idx.SearchBatch(queries, SearchOptions{W: 6, K: 10, Mode: QueryAtATime})
	if err != nil {
		t.Fatal(err)
	}
	b, err := idx.SearchBatch(queries, SearchOptions{W: 6, K: 10, Mode: ClusterMajor})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range a.Results {
		for i := range a.Results[qi] {
			if a.Results[qi][i].Score != b.Results[qi][i].Score {
				t.Fatalf("mode mismatch q%d rank %d", qi, i)
			}
		}
	}
	if b.ListBytesTouched >= a.ListBytesTouched {
		t.Errorf("cluster-major did not reduce bytes: %d vs %d",
			b.ListBytesTouched, a.ListBytesTouched)
	}
}

func TestSearchBatchErrors(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	if _, err := idx.SearchBatch(queries, SearchOptions{W: 0, K: 5}); err == nil {
		t.Error("W=0 accepted")
	}
	if _, err := idx.SearchBatch([][]float32{{1, 2}}, SearchOptions{W: 1, K: 1}); err == nil {
		t.Error("wrong dim accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := idx.Search(queries[0], 6, 5)
	b := loaded.Search(queries[0], 6, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded index differs at %d", i)
		}
	}
	if loaded.Len() != idx.Len() || loaded.Dim() != idx.Dim() || loaded.Metric() != idx.Metric() {
		t.Error("metadata mismatch")
	}
}

func TestStats(t *testing.T) {
	idx, _, _ := buildTestIndex(t, L2, 16)
	st := idx.Stats()
	if st.Vectors != 3000 || st.Clusters != 24 {
		t.Errorf("stats: %+v", st)
	}
	// D=32 f16 (64 B) vs M=8 Ks=16 codes (4 B) -> 16:1.
	if st.CompressionRatio != 16 {
		t.Errorf("compression = %v", st.CompressionRatio)
	}
}

func TestAcceleratorMatchesSoftware(t *testing.T) {
	for _, metric := range []Metric{L2, InnerProduct} {
		idx, _, queries := buildTestIndex(t, metric, 16)
		cfg := DefaultAcceleratorConfig()
		cfg.TopK = 100
		acc, err := NewAccelerator(idx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := acc.SimulateBaseline(queries, SimParams{W: 6, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		sw, err := idx.SearchBatch(queries, SearchOptions{
			W: 6, K: 10, Mode: QueryAtATime, HardwareFaithful: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for qi := range rep.Results {
			for i := range rep.Results[qi] {
				if rep.Results[qi][i] != sw.Results[qi][i] {
					t.Fatalf("%v q%d rank %d: accel %+v vs software %+v",
						metric, qi, i, rep.Results[qi][i], sw.Results[qi][i])
				}
			}
		}
		if rep.Cycles <= 0 || rep.QPS <= 0 || rep.TrafficBytes <= 0 {
			t.Errorf("report: %+v", rep)
		}
		if rep.ChipEnergyJ <= 0 || rep.DRAMEnergyJ <= 0 {
			t.Errorf("energy: %v %v", rep.ChipEnergyJ, rep.DRAMEnergyJ)
		}
	}
}

func TestAcceleratorBatchedFasterAndEqual(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := acc.SimulateBaseline(queries, SimParams{W: 6, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := acc.Simulate(queries, SimParams{W: 6, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cycles >= base.Cycles {
		t.Errorf("batched %d cycles >= baseline %d", opt.Cycles, base.Cycles)
	}
	if opt.TrafficBytes >= base.TrafficBytes {
		t.Errorf("batched traffic %d >= baseline %d", opt.TrafficBytes, base.TrafficBytes)
	}
	for qi := range opt.Results {
		for i := range opt.Results[qi] {
			if opt.Results[qi][i].Score != base.Results[qi][i].Score {
				t.Fatalf("batched/baseline score mismatch q%d rank %d", qi, i)
			}
		}
	}
}

func TestAcceleratorErrors(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	// Unsupported k* surfaces as an error, not a panic.
	bad, err := BuildIndex(clusteredVectors(500, 32, 8, 4), L2, BuildOptions{
		NClusters: 8, M: 8, Ks: 32, TrainIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccelerator(bad, DefaultAcceleratorConfig()); err == nil {
		t.Error("k*=32 accepted by hardware")
	}
	acc, err := NewAccelerator(idx, DefaultAcceleratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Simulate(queries, SimParams{W: 0, K: 10}); err == nil {
		t.Error("W=0 accepted")
	}
	if _, err := acc.Simulate([][]float32{{1}}, SimParams{W: 1, K: 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestAcceleratorTimingOnlyAndTrace(t *testing.T) {
	idx, _, queries := buildTestIndex(t, L2, 16)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	cfg.Trace = true
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Simulate(queries, SimParams{W: 4, K: 10, TimingOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != nil {
		t.Error("TimingOnly returned results")
	}
	if len(rep.Timeline) == 0 {
		t.Error("trace enabled but no timeline")
	}
	if len(rep.TrafficByStream) == 0 {
		t.Error("no per-stream traffic")
	}
}

func TestSilicon(t *testing.T) {
	// Use the paper's geometry (D=128, k*=256, M=64) so the codebook and
	// LUT SRAMs match Table I.
	base := clusteredVectors(2000, 128, 16, 5)
	idx, err := BuildIndex(base, L2, BuildOptions{
		NClusters: 16, M: 64, Ks: 256, TrainIters: 2, MaxTrain: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccelerator(idx, DefaultAcceleratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	si := acc.Silicon()
	if si.TotalAreaMM2 < 17 || si.TotalAreaMM2 > 18 {
		t.Errorf("area %.2f, Table I says 17.51", si.TotalAreaMM2)
	}
	if si.TotalPeakW < 5.1 || si.TotalPeakW > 5.7 {
		t.Errorf("power %.2f, Table I says 5.398", si.TotalPeakW)
	}
	if len(si.Modules) != 4 {
		t.Errorf("%d modules", len(si.Modules))
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", ScaleQuick, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "17.51") {
		t.Error("table1 output missing paper reference value")
	}
	if err := RunExperiment("nope", ScaleQuick, nil, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := RunExperiment("fig9", ScaleQuick, []string{"bogus"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunExperimentRelatedAndExact(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("related", ScaleQuick, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiment("exact", ScaleQuick, []string{"SIFT1M"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Gemini") || !strings.Contains(out, "SIFT1M") {
		t.Error("experiment output incomplete")
	}
}

func TestExperimentsList(t *testing.T) {
	if len(Experiments()) != 11 {
		t.Errorf("%d experiments", len(Experiments()))
	}
}

func TestMetricString(t *testing.T) {
	if L2.String() != "l2" || InnerProduct.String() != "inner-product" {
		t.Error("metric names")
	}
}
