# Offline, stdlib-only Go module — every target works without network,
# except `make lint`, which fetches its pinned analyzer (see below).

GO ?= go

.PHONY: all build test test-noasm race check bench benchall vet fmt fmt-check bench-smoke fuzz-smoke ci ci-cross cluster-integration lint examples experiments clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI test job's second and third passes: the pure-Go reference
# kernels with the assembly compiled out, then the assembled build
# forced to scalar dispatch at runtime (the ANNA_NOSIMD escape hatch).
test-noasm:
	$(GO) test -tags noasm ./...
	ANNA_NOSIMD=1 $(GO) test ./internal/simd/ ./internal/vecmath/ ./internal/pq/ ./internal/ivf/ ./internal/engine/

race:
	$(GO) test -race ./internal/engine/ ./internal/anna/ ./internal/adaptive/ ./internal/qos/ ./internal/cluster/... ./internal/tsdb/ ./internal/slo/ .

# Mirrors .github/workflows/ci.yml exactly (same commands, same package
# lists) so a green `make ci` means a green CI run. Keep in sync.
# (Two exceptions stay CI-only: lint resolves staticcheck over the
# network, and the qemu arm64 cross-test job apt-installs its emulator.
# ci-cross covers the same platforms' compile half offline.)
ci: fmt-check build vet test test-noasm ci-cross ci-race cluster-integration fuzz-smoke bench-smoke

# The CI cross-compile job: build and vet every supported platform. The
# assembly is amd64-only, so this proves the fallback dispatch and build
# tags hold everywhere the toolchain targets first-class.
ci-cross:
	GOOS=linux GOARCH=amd64 $(GO) build ./... && GOOS=linux GOARCH=amd64 $(GO) vet ./...
	GOOS=linux GOARCH=arm64 $(GO) build ./... && GOOS=linux GOARCH=arm64 $(GO) vet ./...
	GOOS=linux GOARCH=386 $(GO) build ./... && GOOS=linux GOARCH=386 $(GO) vet ./...
	GOOS=darwin GOARCH=arm64 $(GO) build ./... && GOOS=darwin GOARCH=arm64 $(GO) vet ./...
	GOOS=windows GOARCH=amd64 $(GO) build ./... && GOOS=windows GOARCH=amd64 $(GO) vet ./...

# Static analysis beyond go vet. The only networked target in this file:
# `go run pkg@version` fetches the pinned staticcheck on first use (and
# caches it), so it lives outside `make ci` and runs as a dedicated CI
# job instead.
STATICCHECK_VERSION ?= 2025.1.1
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The CI race job: engine worker pool, fused scan path, parallel
# build/ingest pipeline (kmeans, pq batch encoder, ivf build), metrics
# instruments, trace ring, WAL, QoS layer (dynamic batcher, result
# cache, token buckets), HTTP serving layer (incl. the shadow recall
# sampler and the concurrent /search + /add cache-invalidation test).
.PHONY: ci-race
ci-race:
	$(GO) test -race ./internal/simd/... ./internal/vecmath/... ./internal/engine/... ./internal/ivf/... ./internal/pq/... ./internal/kmeans/... ./internal/metrics/... ./internal/trace/... ./internal/wal/... ./internal/qos/... ./internal/adaptive/... ./internal/cluster/... ./internal/tsdb/... ./internal/slo/... .

# The CI cluster-integration job: the multi-process fault-injection
# harness (shard processes SIGKILLed mid-load) plus the router's
# degradation chain under injected faults, race-detected.
.PHONY: cluster-integration
cluster-integration:
	$(GO) test -race -v -run 'TestClusterSurvivesShardKill|TestRouterDegradesThroughTimeoutsToBreaker|TestRouterRetriesAbsorbInjected5xx' -count=2 ./internal/cluster/

# The CI fuzz-smoke job: hammer both durable-input decoders — the index
# loader and the WAL reader — with coverage-guided corrupt inputs (a
# finding there means a hostile or damaged file can crash the server),
# then the two assembly-vs-reference differential fuzzers (a finding
# there means a SIMD kernel disagrees with the pure-Go semantics).
fuzz-smoke:
	$(GO) test ./internal/ivf/ -run '^$$' -fuzz=FuzzLoad -fuzztime=30s
	$(GO) test ./internal/wal/ -run '^$$' -fuzz=FuzzLoad -fuzztime=30s
	$(GO) test ./internal/simd/ -run '^$$' -fuzz=FuzzScanADCDiff -fuzztime=30s
	$(GO) test ./internal/simd/ -run '^$$' -fuzz=FuzzDotDiff -fuzztime=30s

# The CI bench-smoke job: small-budget benchmark runs recorded as JSON
# (uploaded as per-PR artifacts in CI; a trajectory, not a gate). The
# build suite gets a smaller budget — one BenchmarkBuild op trains a
# full 100k-vector index. The engine suite's adaptive recall-vs-QPS
# sweep runs at reduced corpus scale (the scalar pass skips it).
bench-smoke:
	$(GO) run ./cmd/benchjson -suite engine -benchtime 10x -sweep-n 6000 -sweep-q 64 -out bench_ci.json
	ANNA_NOSIMD=1 $(GO) run ./cmd/benchjson -suite engine -benchtime 10x -sweep-n 0 -out bench_ci_scalar.json
	$(GO) run ./cmd/benchjson -suite build -benchtime 3x -out bench_ci_build.json
	$(GO) run ./cmd/benchjson -suite serve -benchtime 300ms -out bench_ci_serve.json
	sh scripts/obs_smoke.sh

# Vet plus race-detected tests of the reworked engine worker pool and the
# fused scan path (including the adaptive-effort policies).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/engine/... ./internal/ivf/... ./internal/adaptive/...

# Run the benchmark suites and record before/after figures: the CPU
# engine in BENCH_engine.json, the build/ingest pipeline (train + batch
# encode) in BENCH_build.json, and whole-server latency-vs-QPS curves
# (annaload closed-loop sweep, baseline vs batched+cached) in
# BENCH_serve.json.
bench:
	$(GO) run ./cmd/benchjson -suite engine -out BENCH_engine.json
	$(GO) run ./cmd/benchjson -suite build -out BENCH_build.json
	$(GO) run ./cmd/benchjson -suite serve -out BENCH_serve.json

benchall:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/recommender
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/batchserving
	$(GO) run ./examples/serving

# Regenerate the paper's evaluation section (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/annabench -exp all -scale full -out results_full.txt

clean:
	rm -f test_output.txt bench_output.txt
