# Offline, stdlib-only Go module — every target works without network.

GO ?= go

.PHONY: all build test race check bench benchall vet fmt examples experiments clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/ ./internal/anna/ .

# Vet plus race-detected tests of the reworked engine worker pool and the
# fused scan path.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/engine/... ./internal/ivf/...

# Run the scan/search benchmarks ('Search|ADC|Major' across ivf, pq and
# engine) and record before/after QPS + allocs/op in BENCH_engine.json.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_engine.json

benchall:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/recommender
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/batchserving
	$(GO) run ./examples/serving

# Regenerate the paper's evaluation section (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/annabench -exp all -scale full -out results_full.txt

clean:
	rm -f test_output.txt bench_output.txt
