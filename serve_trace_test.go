package anna

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anna/internal/trace"
)

// postSearch sends a /search with an optional X-Request-ID and returns
// the response.
func postSearch(t *testing.T, url string, body searchRequest, reqID string) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/search", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// A client-supplied X-Request-ID is echoed back, forces a trace, and
// the trace is retrievable from both debug endpoints with the engine's
// stage spans attached.
func TestSearchRequestIDTraceRoundTrip(t *testing.T) {
	_, ts, base := newTestServer(t)

	resp := postSearch(t, ts.URL, searchRequest{Queries: [][]float32{base[3]}, W: 24, K: 5}, "req-abc-123")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc-123" {
		t.Fatalf("X-Request-ID echoed as %q", got)
	}

	// The trace is in /debug/trace/{id} ...
	tr := getTrace(t, ts.URL, "req-abc-123")
	if tr.Queries != 1 || tr.W != 24 || tr.K != 5 || tr.Backend != "software" {
		t.Errorf("trace fields: %+v", tr)
	}
	if tr.Status != http.StatusOK {
		t.Errorf("trace status %d, want 200", tr.Status)
	}
	if tr.Total <= 0 {
		t.Errorf("trace total %v, want > 0", tr.Total)
	}
	for _, span := range []string{"select", "scan", "merge"} {
		found := false
		for _, sp := range tr.Spans {
			if sp.Name == span {
				found = true
			}
		}
		if !found {
			t.Errorf("trace missing %q span: %+v", span, tr.Spans)
		}
	}
	if tr.Scanned <= 0 {
		t.Errorf("trace scanned %d, want > 0", tr.Scanned)
	}

	// ... and in /debug/queries.
	dq := getDebugQueries(t, ts.URL, "")
	found := false
	for _, item := range dq.Traces {
		if item.ID == "req-abc-123" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace not listed in /debug/queries: %+v", dq)
	}
}

// Untagged requests get a generated ID; with sampling disabled they are
// not traced, so the debug lookup 404s.
func TestSearchGeneratedRequestID(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.TraceSampleEvery = -1 // only explicit X-Request-ID requests trace

	resp := postSearch(t, ts.URL, searchRequest{Queries: [][]float32{base[0]}}, "")
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID generated")
	}
	lookup, err := http.Get(ts.URL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer lookup.Body.Close()
	if lookup.StatusCode != http.StatusNotFound {
		t.Errorf("unsampled query traced: /debug/trace/%s -> %d", id, lookup.StatusCode)
	}
}

// With 1-in-1 sampling every request is traced; /debug/queries reports
// them slowest-first and honours ?n=.
func TestDebugQueriesSampledSlowestFirst(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.TraceSampleEvery = 1

	for i := 0; i < 5; i++ {
		resp := postSearch(t, ts.URL, searchRequest{Queries: [][]float32{base[i]}}, "")
		resp.Body.Close()
	}
	dq := getDebugQueries(t, ts.URL, "")
	if dq.RecordedTotal != 5 || dq.Count != 5 {
		t.Fatalf("recorded %d, listed %d, want 5 each", dq.RecordedTotal, dq.Count)
	}
	for i := 1; i < len(dq.Traces); i++ {
		if dq.Traces[i].Total > dq.Traces[i-1].Total {
			t.Errorf("traces not slowest-first at %d: %v > %v", i, dq.Traces[i].Total, dq.Traces[i-1].Total)
		}
	}
	if dq = getDebugQueries(t, ts.URL, "?n=2"); dq.Count != 2 || len(dq.Traces) != 2 {
		t.Errorf("?n=2 returned %d traces", len(dq.Traces))
	}
}

// A query that crosses the slow threshold is captured with its stage
// spans even when it was never sampled, and marked slow.
func TestSlowQueryAutoTrace(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.TraceSampleEvery = -1
	s.SlowQuery = time.Nanosecond // everything is slow

	resp := postSearch(t, ts.URL, searchRequest{Queries: [][]float32{base[1]}}, "")
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	tr := getTrace(t, ts.URL, id)
	if !tr.Slow {
		t.Errorf("slow query not marked slow: %+v", tr)
	}
	if tr.SpanDuration("scan") == 0 && tr.SpanDuration("select") == 0 && tr.SpanDuration("merge") == 0 {
		t.Errorf("post-hoc slow trace has no stage spans: %+v", tr.Spans)
	}
	if _, slow := s.tracer().Recorded(); slow != 1 {
		t.Errorf("slow counter %d, want 1", slow)
	}
}

// The rolling shadow-recall gauge converges to the offline recall of
// the same configuration within a couple of points.
func TestServerRecallEstimatorConvergence(t *testing.T) {
	idx, base, queries := buildTestIndex(t, L2, 16)
	est, err := NewRecallEstimator(base, L2, &RecallEstimatorOptions{SampleEvery: 1, K: 10, Window: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	s := NewServer(idx)
	s.Recall = est
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const w = 8
	nq := len(queries)
	if nq > 64 {
		nq = 64
	}
	for i := 0; i < nq; i++ {
		resp := postSearch(t, ts.URL, searchRequest{Queries: [][]float32{queries[i]}, W: w, K: 10}, "")
		resp.Body.Close()
	}
	waitProcessed(t, est)

	// Offline reference: same queries, same W/K, scored by the library's
	// own recall helper against exact search.
	var offline float64
	for i := 0; i < nq; i++ {
		truth, err := ExactSearch(base, L2, queries[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int64, len(truth))
		for j, r := range truth {
			ids[j] = r.ID
		}
		offline += Recall(10, 10, ids, idx.Search(queries[i], w, 10))
	}
	offline /= float64(nq)

	online := est.Rolling()
	if math.Abs(online-offline) > 0.02 {
		t.Errorf("online recall %v vs offline %v: diverged beyond 2 points", online, offline)
	}
	// And the gauge is live on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `anna_shadow_recall_rolling{k="10"}`) {
		t.Errorf("rolling recall gauge missing from /metrics")
	}
}

// A stalled shadow worker must not delay /search responses: the sample
// is dropped, the response returns promptly.
func TestShadowRerankNeverBlocksServing(t *testing.T) {
	idx, base, queries := buildTestIndex(t, L2, 16)
	est, err := NewRecallEstimator(base, L2, &RecallEstimatorOptions{SampleEvery: 1, K: 10, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer est.Close()
	stall := make(chan struct{})
	est.testHookBeforeJob = func() { <-stall }
	defer close(stall)

	s := NewServer(idx)
	s.Recall = est
	s.SearchTimeout = 2 * time.Second
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	for i := 0; i < 20; i++ {
		resp := postSearch(t, ts.URL, searchRequest{Queries: [][]float32{queries[i%len(queries)]}, W: 8, K: 10}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("20 searches with a stalled shadow worker took %v", elapsed)
	}
	_, _, dropped, _ := est.Stats()
	if dropped == 0 {
		t.Error("stalled worker with queue depth 1: no samples dropped")
	}
}

// debugQueriesResponse mirrors handleDebugQueries's payload.
type debugQueriesResponse struct {
	RecordedTotal uint64         `json:"recorded_total"`
	SlowTotal     uint64         `json:"slow_total"`
	Count         int            `json:"count"`
	Traces        []*trace.Trace `json:"traces"`
}

func getDebugQueries(t *testing.T, base, query string) debugQueriesResponse {
	t.Helper()
	resp, err := http.Get(base + "/debug/queries" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries status %d", resp.StatusCode)
	}
	var out debugQueriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getTrace(t *testing.T, base, id string) *trace.Trace {
	t.Helper()
	resp, err := http.Get(base + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace/%s status %d", id, resp.StatusCode)
	}
	var out trace.Trace
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}
